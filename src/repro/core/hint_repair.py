"""Incumbent hint repair: project a stale MIP start onto new directives.

The online loop seeds every re-solve with the previous incumbent as a
warm-start hint.  A *bound-only* directive (pin, forbid, retire) or an
appended cap row frequently invalidates that hint — it violates exactly
the new restriction — and branch-and-bound then rejects the seed and
loses all of its pruning power (`warm_start_rejected`).  This module
builds the :attr:`repro.lp.SolveCache.hint_repairer` callback: instead
of discarding the incumbent, *project* it back into the feasible region
by shifting application groups off the violated site, choosing the
cheapest legal relocation with the same incremental move evaluator the
local-search polisher uses.

The repaired hint reconstructs **every** model variable — assignment
binaries, site-used binaries, space-segment selectors and loads, and
peer-split linkers — so the branch-and-bound seeding check
(:func:`repro.lp.branch_bound._warm_start_point`) sees a complete,
feasible point.  Feasibility alone is not enough, though: a projection
that lands several percent above the optimum seeds an incumbent too
loose for root reduced-cost fixing to prune anything, so a greedy
*polish* pass then relocates groups while the live problem objective
(move penalty included) improves.  A final self-check evaluates all
bounds and constraints of the live problem; any doubt falls back to the
unpolished projection or returns ``None`` and the solve proceeds
unseeded, exactly as before.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .formulation import ConsolidationModel
from .local_search import _IncrementalEvaluator, _risk_conflict

_TOL = 1e-6
#: Repair rounds before giving up; each round fixes every violation it
#: can see, so >1 rounds only happen when a repair move itself trips a
#: different row (moving into a freshly-capped site).
_MAX_ROUNDS = 8


def _violation(con, values: dict) -> float:
    """How far ``values`` violates ``con`` (0.0 when satisfied)."""
    lhs = sum(
        coef * values.get(var.name, 0.0) for var, coef in con.expr.terms().items()
    )
    tol = _TOL * max(1.0, abs(con.rhs))
    sense = con.sense.value
    if sense == "<=":
        return lhs - con.rhs if lhs > con.rhs + tol else 0.0
    if sense == ">=":
        return con.rhs - lhs if lhs < con.rhs - tol else 0.0
    return abs(lhs - con.rhs) if abs(lhs - con.rhs) > tol else 0.0


def make_hint_repairer(
    model: ConsolidationModel,
) -> Callable[[object, Mapping[str, float]], dict | None]:
    """Build a ``(problem, hint) -> repaired | None`` callback for ``model``.

    Returns ``None`` from every call when repair cannot be trusted: a DR
    model (backup pools move non-locally), a hint that does not decode
    to a full placement, or a projection that fails its own feasibility
    self-check.
    """
    state = model.state
    ev = _IncrementalEvaluator(state, model.options.wan_model)
    groups = ev.groups
    sites = ev.sites
    omega = state.params.business_impact
    group_cap = omega * len(state.app_groups) if omega < 1.0 else None
    schedules = {
        dc.name: dc.space_cost.truncated(dc.capacity)
        for dc in state.target_datacenters
    }
    x_site = {var.name: key for key, var in model.x.items()}

    def build_values(placement: dict[str, str]) -> dict[str, float] | None:
        """Full name→value point implied by ``placement``.

        Sets each site-used binary iff the site carries load, selects
        the space-cost tier containing the site's load, and tightens
        every peer-split linker — the cheapest completion of the
        assignment, mirroring what any optimal solution does.
        """
        values: dict[str, float] = {}
        load_at = {name: 0 for name in sites}
        for g, site in placement.items():
            load_at[site] += groups[g].servers
        for (g, dc), var in model.x.items():
            values[var.name] = 1.0 if placement.get(g) == dc else 0.0
        for name, var in model.used.items():
            values[var.name] = 1.0 if load_at[name] > 0 else 0.0
        for name, block in model.segment_blocks.items():
            load = float(load_at[name])
            chosen = None
            if load > 0:
                for k, seg in enumerate(schedules[name].segments):
                    if seg.lower - _TOL <= load <= seg.upper + _TOL:
                        chosen = k
                        break
                if chosen is None:
                    return None  # load outside every tier: cannot complete
            for k, (z, n) in enumerate(zip(block.selectors, block.loads)):
                values[z.name] = 1.0 if k == chosen else 0.0
                values[n.name] = load if k == chosen else 0.0
        for (a, b, dc_a, dc_b), var in model.peer_split.items():
            both = placement.get(a) == dc_a and placement.get(b) == dc_b
            values[var.name] = 1.0 if both else 0.0
        return values

    def repair(problem, hint: Mapping[str, float]) -> dict | None:
        if model.options.enable_dr:
            return None  # backup pools re-size non-locally under a move
        if problem is not model.problem:
            return None  # a different model: the session's vars don't apply
        placement: dict[str, str] = {}
        for (g, dc), var in model.x.items():
            if float(hint.get(var.name, 0.0)) > 0.5:
                placement[g] = dc
        if len(placement) != len(groups):
            return None

        # Current directive state, read straight off the live variables:
        # retire/forbid push ub below 1 (site disallowed), pin lifts lb
        # above 0 (site forced).
        allowed: dict[str, set[str]] = {g: set() for g in groups}
        forced: dict[str, str] = {}
        for (g, dc), var in model.x.items():
            ub = float("inf") if var.ub is None else var.ub
            lb = float("-inf") if var.lb is None else var.lb
            if ub >= 0.5:
                allowed[g].add(dc)
            if lb > 0.5:
                if forced.setdefault(g, dc) != dc:
                    return None  # two pins on one group: infeasible
        servers_at = {name: 0 for name in sites}
        count_at = {name: 0 for name in sites}
        for g, site in placement.items():
            servers_at[site] += groups[g].servers
            count_at[site] += 1
        values = build_values(placement)
        if values is None:
            return None

        # Every ``<=`` row each assignment binary loads (positively), so
        # the destination gate can see cap rows too — without this a
        # repair ping-pongs load between two capped sites forever.
        rows_by_x: dict[str, list[tuple[object, float]]] = {}
        for con in problem.constraints:
            if con.sense.value != "<=":
                continue
            for var, coef in con.expr.terms().items():
                if coef > 0.0 and var.name in x_site:
                    rows_by_x.setdefault(var.name, []).append((con, float(coef)))
        used_by_site = {name: var for name, var in model.used.items()}
        moves_of: dict[str, int] = {}

        def apply_move(g: str, dst: str, budget: dict | None = None) -> bool:
            nonlocal values
            src = placement[g]
            placement[g] = dst
            servers_at[src] -= groups[g].servers
            servers_at[dst] += groups[g].servers
            count_at[src] -= 1
            count_at[dst] += 1
            tally = moves_of if budget is None else budget
            tally[g] = tally.get(g, 0) + 1
            values = build_values(placement)
            return values is not None

        def le_fits(g: str, dst: str) -> bool:
            """Would moving ``g`` to ``dst`` keep every ``<=`` row on
            ``X[g,dst]`` satisfied, at the current point?"""
            src = placement[g]
            var_dst = model.x[(g, dst)]
            var_src = model.x.get((g, src))
            u_dst = used_by_site.get(dst)
            for con, coef_dst in rows_by_x.get(var_dst.name, ()):
                terms = con.expr.terms()
                lhs = sum(
                    c * values.get(v.name, 0.0) for v, c in terms.items()
                )
                lhs += coef_dst  # X[g,dst] flips 0 -> 1
                if var_src is not None and var_src in terms:
                    lhs -= terms[var_src]  # X[g,src] flips 1 -> 0
                if (
                    u_dst is not None
                    and u_dst in terms
                    and values.get(u_dst.name, 0.0) < 0.5
                ):
                    lhs += terms[u_dst]  # site turns on: U[dst] 0 -> 1
                if lhs > con.rhs + _TOL * max(1.0, abs(con.rhs)):
                    return False
            return True

        def gates_ok(g: str, dst: str, budget: dict | None = None) -> bool:
            if dst not in allowed[g] or dst == placement[g]:
                return False
            if forced.get(g, dst) != dst:
                return False
            tally = moves_of if budget is None else budget
            if tally.get(g, 0) >= 3:
                return False  # thrash backstop: a group moves at most thrice
            dst_dc = sites[dst]
            if servers_at[dst] + groups[g].servers > dst_dc.capacity:
                return False
            if group_cap is not None and count_at[dst] + 1 > group_cap:
                return False
            if _risk_conflict(groups[g], dst, placement, groups):
                return False
            return le_fits(g, dst)

        def move_delta(g: str, dst: str) -> float:
            grp = groups[g]
            src_dc, dst_dc = sites[placement[g]], sites[dst]
            src_servers = servers_at[placement[g]]
            dst_servers = servers_at[dst]
            return (
                ev.site_cost(src_dc, src_servers - grp.servers)
                - ev.site_cost(src_dc, src_servers)
                + ev.site_cost(dst_dc, dst_servers + grp.servers)
                - ev.site_cost(dst_dc, dst_servers)
                + ev.group_cost(grp, dst_dc)
                - ev.group_cost(grp, src_dc)
            )

        def cheapest_destination(g: str) -> str | None:
            best, best_delta = None, None
            for dst in allowed[g]:
                if not gates_ok(g, dst):
                    continue
                delta = move_delta(g, dst)
                if best_delta is None or delta < best_delta:
                    best, best_delta = dst, delta
            return best

        def feasible_point(point: dict[str, str]) -> dict | None:
            """Full values for ``point`` iff it satisfies every bound and
            constraint of the live problem, else ``None``."""
            vals = build_values(point)
            if vals is None:
                return None
            for var in problem.variables:
                value = vals.setdefault(var.name, float(hint.get(var.name, 0.0)))
                if var.lb is not None and value < var.lb - _TOL:
                    return None
                if var.ub is not None and value > var.ub + _TOL:
                    return None
            for con in problem.constraints:
                if _violation(con, vals) > 0.0:
                    return None
            return vals

        def polish() -> bool:
            """Relocate/swap descent on the *problem* objective.

            Repair only restores feasibility; the projected point can sit
            several percent above the optimum, and a loose incumbent gives
            the solver's root reduced-cost fixing nothing to work with.
            Candidates are scored against the live objective vector —
            which, unlike :func:`move_delta`'s base-cost model, includes
            the controller's move-penalty terms — and the winner is only
            applied after a full feasibility check of the candidate point,
            so no conservative gate can strand the descent.  Swaps are
            what let two groups trade capacity-tight sites, the move a
            relocate-only pass cannot make.  A per-group move budget,
            separate from the repair budget, bounds the walk.
            """
            sign = 1.0 if problem.sense == "minimize" else -1.0
            obj_terms = {
                var.name: sign * float(coef)
                for var, coef in problem.objective.terms().items()
            }

            def point_obj(vals: dict[str, float]) -> float:
                return sum(
                    coef * vals.get(name, 0.0)
                    for name, coef in obj_terms.items()
                )

            def candidates() -> list[dict[str, str]]:
                names = sorted(placement)
                out = []
                for g in names:
                    if budget.get(g, 0) >= 4:
                        continue
                    for dst in sorted(allowed[g]):
                        if dst == placement[g] or forced.get(g, dst) != dst:
                            continue
                        trial = dict(placement)
                        trial[g] = dst
                        out.append(trial)
                for i, a in enumerate(names):
                    if budget.get(a, 0) >= 4:
                        continue
                    site_a = placement[a]
                    for b in names[i + 1 :]:
                        site_b = placement[b]
                        if site_a == site_b or budget.get(b, 0) >= 4:
                            continue
                        if site_b not in allowed[a] or site_a not in allowed[b]:
                            continue
                        if forced.get(a, site_b) != site_b:
                            continue
                        if forced.get(b, site_a) != site_a:
                            continue
                        trial = dict(placement)
                        trial[a], trial[b] = site_b, site_a
                        out.append(trial)
                return out

            nonlocal values
            budget: dict[str, int] = {}
            current = point_obj(values)
            polished = False
            for _ in range(4 * len(placement)):
                scored = []
                for trial in candidates():
                    vals = build_values(trial)
                    if vals is None:
                        continue
                    cand = point_obj(vals)
                    if cand < current - 1e-9:
                        scored.append((cand, trial))
                scored.sort(key=lambda sc: sc[0])
                applied = False
                for cand, trial in scored:
                    vals = feasible_point(trial)
                    if vals is None:
                        continue
                    for g in sorted(placement):
                        if trial[g] != placement[g]:
                            budget[g] = budget.get(g, 0) + 1
                            servers_at[placement[g]] -= groups[g].servers
                            servers_at[trial[g]] += groups[g].servers
                            count_at[placement[g]] -= 1
                            count_at[trial[g]] += 1
                    placement.clear()
                    placement.update(trial)
                    values = vals
                    current = cand
                    applied = polished = True
                    break
                if not applied:
                    break
            return polished

        moved = False
        for _ in range(_MAX_ROUNDS):
            # Pins override everything: the group must sit at its site.
            for g, site in forced.items():
                if placement[g] != site:
                    if not apply_move(g, site):
                        return None
                    moved = True
            # Retire/forbid: the current site is no longer allowed.
            displaced = [g for g in placement if placement[g] not in allowed[g]]
            for g in displaced:
                dst = cheapest_destination(g)
                if dst is None:
                    return None  # nowhere legal to land: give up
                if not apply_move(g, dst):
                    return None
                moved = True
            # Appended cap rows (and any other ``<=`` the point trips):
            # unload the cheapest contributing group until the row holds.
            clean = True
            for con in problem.constraints:
                overshoot = _violation(con, values)
                if overshoot <= 0.0 or con.sense.value != "<=":
                    if overshoot > 0.0:
                        clean = False  # non-LE violation: next round re-checks
                    continue
                contributors = []
                for var, coef in con.expr.terms().items():
                    key = x_site.get(var.name)
                    if key is None or coef <= 0.0:
                        continue
                    g, dc = key
                    if placement.get(g) == dc:
                        contributors.append((g, float(coef)))
                while overshoot > _TOL and contributors:
                    best = None
                    for i, (g, coef) in enumerate(contributors):
                        dst = cheapest_destination(g)
                        if dst is None:
                            continue
                        delta = move_delta(g, dst)
                        if best is None or delta < best[3]:
                            best = (i, g, dst, delta, coef)
                    if best is None:
                        return None  # row cannot be satisfied by moves
                    i, g, dst, _, coef = best
                    if not apply_move(g, dst):
                        return None
                    contributors.pop(i)
                    overshoot -= coef
                    moved = True
                    clean = False
            if clean and all(placement[g] in allowed[g] for g in placement):
                break
        else:
            return None  # did not converge within the round budget

        repaired_placement = dict(placement)
        polished = polish()
        if not (moved or polished):
            return None  # hint untouched: seed the raw hint as before

        # Final self-check: the projected point must satisfy every bound
        # and constraint of the live problem, or seeding would fail and
        # the "repair" would just burn time.  (Polish moves were already
        # checked one by one; this re-checks whatever survived.)
        out = feasible_point(placement)
        if out is None and polished and moved:
            # A polish move tripped something the gates missed: fall back
            # to the merely-repaired (pre-polish) projection.
            out = feasible_point(repaired_placement)
        return out

    return repair
