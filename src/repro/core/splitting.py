"""Splitting oversized application groups.

The associativity constraint keeps each application group whole — but
"in the extreme case where one application group is too large to be
placed in any single datacenter", the paper defers to techniques like
Hajjat et al. (its reference [3]) to split the group first and then
feed the fragments to eTransform.  This module implements that
pre-processing step.

A split is not free: intra-group traffic that used to stay on the LAN
becomes WAN traffic between fragments.  We surface that as a
configurable per-fragment data surcharge, so the optimizer still sees
the true cost of having had to split.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
import math

from .entities import ApplicationGroup, AsIsState


@dataclass
class SplitRecord:
    """Audit record of one group split."""

    original: str
    fragments: list[str]
    fragment_servers: list[int]

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)


@dataclass
class SplitResult:
    """A rewritten state plus the audit trail of applied splits."""

    state: AsIsState
    records: list[SplitRecord] = field(default_factory=list)

    @property
    def any_split(self) -> bool:
        return bool(self.records)

    def fragments_of(self, original: str) -> list[str]:
        for record in self.records:
            if record.original == original:
                return list(record.fragments)
        raise KeyError(f"group {original!r} was not split")


def _fragment_sizes(servers: int, max_servers: int) -> list[int]:
    """Split ``servers`` into near-equal fragments of ≤ ``max_servers``."""
    parts = math.ceil(servers / max_servers)
    base = servers // parts
    remainder = servers % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def split_oversized_groups(
    state: AsIsState,
    wan_overhead_fraction: float = 0.2,
    risk_isolate_fragments: bool = False,
) -> SplitResult:
    """Split every group that fits no single target data center.

    Parameters
    ----------
    state:
        The as-is state; it is not mutated — a rewritten copy is
        returned.
    wan_overhead_fraction:
        Extra monthly data (as a fraction of the group's ``D_i``) each
        *additional* fragment adds, modeling intra-group traffic that
        crossing the split turns into WAN traffic.
    risk_isolate_fragments:
        When True, fragments of the same group are tagged with a shared
        risk group so the optimizer keeps them in *different* sites
        (replica semantics).  When False (default) fragments may
        co-locate — splitting only relaxes the packing constraint.

    Returns
    -------
    SplitResult
        The rewritten state (oversized groups replaced by fragments
        named ``<name>/0``, ``<name>/1``, ...) and per-split records.

    Raises
    ------
    ValueError
        If the largest target cannot hold even a single server, or the
        overhead fraction is negative.
    """
    if wan_overhead_fraction < 0:
        raise ValueError("WAN overhead fraction cannot be negative")
    if not state.target_datacenters:
        raise ValueError("state has no target data centers")
    max_servers = max(dc.capacity for dc in state.target_datacenters)

    new_groups: list[ApplicationGroup] = []
    records: list[SplitRecord] = []
    for group in state.app_groups:
        eligible = [
            dc for dc in state.target_datacenters if state.placeable(group, dc)
        ]
        if eligible:
            new_groups.append(group)
            continue
        # The group fits nowhere *because of size* only: region/forbid
        # constraints are not repaired by splitting.
        size_limited = any(
            group.servers > dc.capacity
            and dc.name not in group.forbidden_datacenters
            and (group.allowed_regions is None or dc.region in group.allowed_regions)
            for dc in state.target_datacenters
        )
        if not size_limited:
            new_groups.append(group)
            continue

        allowed_caps = [
            dc.capacity
            for dc in state.target_datacenters
            if dc.name not in group.forbidden_datacenters
            and (group.allowed_regions is None or dc.region in group.allowed_regions)
        ]
        limit = max(allowed_caps)
        sizes = _fragment_sizes(group.servers, limit)
        overhead = 1.0 + wan_overhead_fraction * (len(sizes) - 1)
        fragment_names: list[str] = []
        for idx, fragment_servers in enumerate(sizes):
            share = fragment_servers / group.servers
            fragment = replace(
                group,
                name=f"{group.name}/{idx}",
                servers=fragment_servers,
                monthly_data_mb=group.monthly_data_mb * share * overhead,
                users={loc: c * share for loc, c in group.users.items()},
                peers={peer: t * share for peer, t in group.peers.items()},
                risk_group=(
                    f"split:{group.name}" if risk_isolate_fragments else group.risk_group
                ),
            )
            new_groups.append(fragment)
            fragment_names.append(fragment.name)
        records.append(
            SplitRecord(
                original=group.name,
                fragments=fragment_names,
                fragment_servers=sizes,
            )
        )

    if not records:
        return SplitResult(state=state)

    # Re-point peer traffic aimed at split groups: traffic to the
    # original is distributed over its fragments by server share.
    fragment_shares: dict[str, list[tuple[str, float]]] = {}
    for record in records:
        total = sum(record.fragment_servers)
        fragment_shares[record.original] = [
            (name, servers / total)
            for name, servers in zip(record.fragments, record.fragment_servers)
        ]
    rewritten_groups: list[ApplicationGroup] = []
    for group in new_groups:
        if not any(peer in fragment_shares for peer in group.peers):
            rewritten_groups.append(group)
            continue
        peers: dict[str, float] = {}
        for peer, traffic in group.peers.items():
            if peer in fragment_shares:
                for fragment_name, share in fragment_shares[peer]:
                    peers[fragment_name] = peers.get(fragment_name, 0.0) + traffic * share
            else:
                peers[peer] = peers.get(peer, 0.0) + traffic
        rewritten_groups.append(replace(group, peers=peers))

    new_state = replace(state, app_groups=rewritten_groups)
    return SplitResult(state=new_state, records=records)


def merge_placement(
    result: SplitResult, placement: dict[str, str]
) -> dict[str, list[str]]:
    """Group a fragment placement back by original group name.

    Returns original-group → list of sites hosting its fragments (one
    entry for unsplit groups).
    """
    fragment_owner = {
        fragment: record.original
        for record in result.records
        for fragment in record.fragments
    }
    merged: dict[str, list[str]] = {}
    for name, site in placement.items():
        owner = fragment_owner.get(name, name)
        merged.setdefault(owner, [])
        if site not in merged[owner]:
            merged[owner].append(site)
    return merged
