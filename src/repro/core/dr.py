"""Disaster-recovery extension of the consolidation MILP (Section IV).

Adds, on top of :class:`~repro.core.formulation.ConsolidationModel`:

* secondary-site binaries :math:`Y_{ij}` with :math:`Σ_j Y_{ij} = 1` and
  :math:`X_{ij} + Y_{ij} ≤ 1` (primary ≠ secondary);
* backup pools :math:`G_b` shared across application groups under the
  single-failure assumption, linearized with
  :math:`J_{abc} ≥ X_{ca} + Y_{cb} − 1` and
  :math:`G_b ≥ Σ_c J_{abc} S_c` for every primary *a*;
* (optional) dedicated pools :math:`G_b ≥ Σ_c Y_{cb} S_c` for
  multi-failure protection.

:math:`J` may stay *continuous*: it only lower-bounds :math:`G_b`, which
the objective minimizes, so at any optimum
:math:`J_{abc} = \\max(0, X_{ca} + Y_{cb} − 1)` exactly — the relaxation
is tight and saves :math:`M·N²` binaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..lp import quicksum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .formulation import ConsolidationModel


def add_disaster_recovery(model: "ConsolidationModel") -> None:
    """Install DR variables, constraints and bookkeeping on ``model``.

    Called by the builder when ``ModelOptions.enable_dr`` is set; the DR
    cost terms are added by the builder's ``_dr_objective`` and the
    backup load feeds the capacity and space-segment constraints.
    """
    state = model.state
    prob = model.problem

    # Secondary-site binaries over the same eligibility filter as X.
    for group in state.app_groups:
        for dc in state.target_datacenters:
            if (group.name, dc.name) in model.x:
                model.y[(group.name, dc.name)] = prob.add_binary(
                    f"Y[{group.name},{dc.name}]"
                )

    for group in state.app_groups:
        y_vars = [v for (g, _), v in model.y.items() if g == group.name]
        if len(y_vars) < 2:
            # A single eligible site cannot host both primary and secondary.
            raise ValueError(
                f"group {group.name!r} has fewer than two eligible sites; "
                "disaster recovery is impossible for it"
            )
        prob.add_constraint(quicksum(y_vars) == 1, f"dr_assign[{group.name}]")

    # Primary and secondary must differ: X_ij + Y_ij <= 1.
    for key, x_var in model.x.items():
        group_name, dc_name = key
        prob.add_constraint(
            x_var + model.y[key] <= 1, f"dr_distinct[{group_name},{dc_name}]"
        )

    # Backup pool size per site.
    for dc in state.target_datacenters:
        model.g[dc.name] = prob.add_variable(
            f"G[{dc.name}]", lb=0.0, ub=float(dc.capacity)
        )

    if model.options.dedicated_backups:
        _add_dedicated_pools(model)
    else:
        _add_shared_pools(model)


def _add_dedicated_pools(model: "ConsolidationModel") -> None:
    """Multi-failure sizing: every group brings its own backup servers."""
    prob = model.problem
    for dc in model.state.target_datacenters:
        demand = quicksum(
            model.y[(g.name, dc.name)] * g.servers
            for g in model.state.app_groups
            if (g.name, dc.name) in model.y
        )
        prob.add_constraint(model.g[dc.name] >= demand, f"dr_pool[{dc.name}]")


def _add_shared_pools(model: "ConsolidationModel") -> None:
    """Single-failure sizing with shared pools (paper's J/G construction)."""
    state = model.state
    prob = model.problem

    # J[a, b, c] ≥ X_ca + Y_cb − 1, continuous in [0, 1].
    for group in state.app_groups:
        for dc_a in state.target_datacenters:
            if (group.name, dc_a.name) not in model.x:
                continue
            for dc_b in state.target_datacenters:
                if dc_b.name == dc_a.name:
                    continue
                if (group.name, dc_b.name) not in model.y:
                    continue
                j_var = prob.add_variable(
                    f"J[{dc_a.name},{dc_b.name},{group.name}]", lb=0.0, ub=1.0
                )
                model.j[(dc_a.name, dc_b.name, group.name)] = j_var
                prob.add_constraint(
                    j_var
                    >= model.x[(group.name, dc_a.name)]
                    + model.y[(group.name, dc_b.name)]
                    - 1,
                    f"dr_link[{dc_a.name},{dc_b.name},{group.name}]",
                )

    # G_b ≥ Σ_c J_abc S_c for every potential failing primary a.
    groups_by_name = {g.name: g for g in state.app_groups}
    for dc_b in state.target_datacenters:
        for dc_a in state.target_datacenters:
            if dc_a.name == dc_b.name:
                continue
            terms = [
                j_var * groups_by_name[c].servers
                for (a, b, c), j_var in model.j.items()
                if a == dc_a.name and b == dc_b.name
            ]
            if terms:
                prob.add_constraint(
                    model.g[dc_b.name] >= quicksum(terms),
                    f"dr_pool[{dc_b.name},{dc_a.name}]",
                )
