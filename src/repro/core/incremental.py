"""Incremental re-solve engine: session directives as model *deltas*.

The paper's module 4 feeds administrator directives back into the LP and
re-solves.  Rebuilding the whole MILP per directive is wasteful — every
directive the interface offers is expressible as a small edit to the
already-built model:

=============  ==========================================================
directive      delta against the built :class:`ConsolidationModel`
=============  ==========================================================
``pin``        raise ``X[g,dc].lb`` to 1 (the assignment row then forces
               every other ``X[g,*]`` to 0 in any feasible point)
``forbid``     drop ``X[g,dc].ub`` to 0
``retire``     drop the upper bound of every variable attached to the
               site to 0 — ``X[*,dc]``, ``U[dc]``, the segment binaries
               and loads, DR pool/secondary variables, peer-split links
``cap``        append one ``Σ X[*,dc] ≤ limit`` constraint row
``cap_servers``  append one ``Σ S_g·X[g,dc] ≤ limit`` row (server-
               weighted headroom, limits in *nominal server* units)
``cap_load``   append one ``Σ w_g·X[g,dc] ≤ limit`` row with caller-
               supplied weights — the online controller's overload
               response, where ``w_g`` is the group's *effective* load
               (``factor × servers``) frozen at trigger time
=============  ==========================================================

Crucially all of these are *tightenings*: bounds only narrow and rows
are only appended, never edited.  That is what the solve layer's
:class:`repro.lp.SolveCache` exploits — the constraint matrices are
untouched (one :class:`~repro.lp.matrix_lp.RelaxationContext` survives
the whole session) and a previous optimum that still satisfies the
tightened model is provably still optimal.

:class:`RevisionedModel` owns the journal: every applied directive
records the bounds it changed and the constraint-list length before it,
so :meth:`RevisionedModel.pop` restores the model exactly (and the model
fingerprint returns to its prior value, turning ``undo`` re-solves into
cache hits).

Orthogonal to the journal, :meth:`RevisionedModel.set_move_penalty`
swaps a migration-cost term into the objective: given an incumbent
placement, every assignment variable that would *move* a group picks up
``per_server_cost × servers`` of penalty, so a re-solve only relocates
a group when the steady-state saving beats the disruption — the
anti-thrash term of the online re-planning loop.  The swap always
installs a *new* objective expression (and restores the original object
on clear), so the solve cache's identity checks and fingerprints stay
sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..lp import quicksum
from ..lp.expressions import Variable
from .formulation import ConsolidationModel, InfeasibleModelError


def _jitter(i: int) -> float:
    """Deterministic pseudo-random value in ``(0, 1)`` for index ``i``.

    Used to perturb move-penalty coefficients just enough that no two
    distinct move-sets tie exactly; irrational spacing makes subset-sum
    collisions vanish in float precision.
    """
    return math.sin(i + 1.0) * 43758.5453123 % 1.0


@dataclass
class Directive:
    """One administrator steering action (paper Fig. 5, module 4)."""

    kind: str  # "pin" | "forbid" | "retire_site" | "cap_groups" | "cap_servers" | "cap_load"
    group: str | None = None
    datacenter: str | None = None
    limit: float | None = None
    #: ``cap_load`` only: ``((group, weight), ...)`` — the effective
    #: per-group load coefficients the cap row is written with.
    weights: tuple[tuple[str, float], ...] | None = None

    def describe(self) -> str:
        if self.kind == "pin":
            return f"pin {self.group!r} to {self.datacenter!r}"
        if self.kind == "forbid":
            return f"forbid {self.group!r} in {self.datacenter!r}"
        if self.kind == "retire_site":
            return f"retire site {self.datacenter!r}"
        if self.kind == "cap_groups":
            return f"cap {self.datacenter!r} at {self.limit} groups"
        if self.kind == "cap_servers":
            return f"cap {self.datacenter!r} at {self.limit} servers"
        if self.kind == "cap_load":
            return f"cap {self.datacenter!r} at {self.limit:g} effective load"
        return self.kind

    def as_dict(self) -> dict:
        """JSON-safe form (the planning service's wire format)."""
        record: dict = {"kind": self.kind}
        if self.group is not None:
            record["group"] = self.group
        if self.datacenter is not None:
            record["datacenter"] = self.datacenter
        if self.limit is not None:
            record["limit"] = self.limit
        if self.weights is not None:
            record["weights"] = [[g, w] for g, w in self.weights]
        return record


#: Directive kinds and the payload fields each requires.
DIRECTIVE_FIELDS = {
    "pin": ("group", "datacenter"),
    "forbid": ("group", "datacenter"),
    "retire_site": ("datacenter",),
    "cap_groups": ("datacenter", "limit"),
    "cap_servers": ("datacenter", "limit"),
    "cap_load": ("datacenter", "limit", "weights"),
}


def directive_from_dict(data: dict) -> Directive:
    """Inverse of :meth:`Directive.as_dict`, validating kind and fields."""
    kind = data.get("kind")
    if kind not in DIRECTIVE_FIELDS:
        raise ValueError(
            f"unknown directive kind {kind!r} "
            f"(expected one of {', '.join(sorted(DIRECTIVE_FIELDS))})"
        )
    for field_name in DIRECTIVE_FIELDS[kind]:
        if data.get(field_name) is None:
            raise ValueError(f"directive {kind!r} requires field {field_name!r}")
    limit = data.get("limit")
    if limit is not None:
        # cap_load limits are effective-load units and may be fractional.
        limit = float(limit) if kind == "cap_load" else int(limit)
    weights = data.get("weights")
    if weights is not None:
        weights = tuple((str(g), float(w)) for g, w in weights)
    return Directive(
        kind=kind,
        group=data.get("group"),
        datacenter=data.get("datacenter"),
        limit=limit,
        weights=weights,
    )


@dataclass
class Revision:
    """The journal entry for one applied directive.

    ``bound_changes`` holds ``(variable, old_lb, old_ub)`` in application
    order; ``constraints_before`` is the model's constraint count before
    the directive (anything past it is truncated on undo).
    """

    directive: Directive
    bound_changes: list[tuple[Variable, float | None, float | None]] = field(
        default_factory=list
    )
    constraints_before: int = 0

    def describe(self) -> str:
        return f"{self.directive.describe()} ({len(self.bound_changes)} bound edits)"


class RevisionedModel:
    """Applies/undoes directives as deltas on a built consolidation model.

    Example
    -------
    ::

        model = ConsolidationModel(state)
        engine = RevisionedModel(model)
        engine.apply(Directive("pin", group="erp", datacenter="east"))
        solution = solve(model.problem, cache=cache)
        engine.pop()      # model bit-for-bit back to the pre-pin state
    """

    def __init__(self, model: ConsolidationModel) -> None:
        self.model = model
        self.revisions: list[Revision] = []
        # The objective as built — restored verbatim (same object, so
        # the solve cache's identity check re-engages) when the move
        # penalty is cleared.
        self._base_objective = model.problem.objective
        self.move_penalty: tuple[dict[str, str], float] | None = None

    @property
    def revision(self) -> int:
        """Number of directives currently applied."""
        return len(self.revisions)

    def applied_directives(self) -> list[Directive]:
        """The directives currently in force, oldest first."""
        return [rev.directive for rev in self.revisions]

    def retired_sites(self) -> set[str]:
        """Names of sites removed by currently-applied retire directives."""
        return {
            rev.directive.datacenter
            for rev in self.revisions
            if rev.directive.kind == "retire_site" and rev.directive.datacenter
        }

    # -- applying ----------------------------------------------------------

    def apply(self, directive: Directive) -> Revision:
        """Apply one directive as a model delta; returns its journal entry.

        Raises ``ValueError`` for a pin onto a pair the model cannot
        express (ineligible or already forbidden/retired) and
        :class:`InfeasibleModelError` when retiring a site would leave
        some group with no candidate site — mirroring what the cold
        rebuild path raises in those situations.
        """
        rev = Revision(
            directive=directive,
            constraints_before=self.model.problem.num_constraints,
        )
        kind = directive.kind
        if kind == "pin":
            self._apply_pin(rev)
        elif kind == "forbid":
            self._apply_forbid(rev)
        elif kind == "retire_site":
            self._apply_retire(rev)
        elif kind == "cap_groups":
            self._apply_cap(rev)
        elif kind == "cap_servers":
            self._apply_cap_servers(rev)
        elif kind == "cap_load":
            self._apply_cap_load(rev)
        else:
            raise ValueError(f"unknown directive kind {kind!r}")
        self.revisions.append(rev)
        return rev

    def pop(self) -> Revision:
        """Undo the most recent directive, restoring bounds and rows."""
        if not self.revisions:
            raise IndexError("no revisions to pop")
        rev = self.revisions.pop()
        for var, old_lb, old_ub in reversed(rev.bound_changes):
            var.lb = old_lb
            var.ub = old_ub
        self.model.problem.truncate_constraints(rev.constraints_before)
        return rev

    def sync(self, directives: list[Directive]) -> None:
        """Make the applied set equal ``directives`` with minimal work.

        Pops back to the longest common prefix, then applies the rest —
        so an ``undo()`` in the session unwinds exactly one revision and
        everything before it stays warm.
        """
        common = 0
        for rev, directive in zip(self.revisions, directives):
            if rev.directive != directive:
                break
            common += 1
        while len(self.revisions) > common:
            self.pop()
        for directive in directives[common:]:
            self.apply(directive)

    # -- per-directive deltas ----------------------------------------------

    def _set_bounds(
        self,
        rev: Revision,
        var: Variable,
        lb: float | None = None,
        ub: float | None = None,
    ) -> None:
        rev.bound_changes.append((var, var.lb, var.ub))
        if lb is not None:
            var.lb = lb
        if ub is not None:
            var.ub = ub

    def _apply_pin(self, rev: Revision) -> None:
        d = rev.directive
        key = (d.group, d.datacenter)
        var = self.model.x.get(key)
        if var is None:
            raise ValueError(
                f"cannot pin: {d.group!r} is not placeable in {d.datacenter!r}"
            )
        if var.ub is not None and var.ub < 1.0:
            raise ValueError(
                f"cannot pin: {d.group!r} in {d.datacenter!r} is excluded by an "
                "earlier forbid/retire directive"
            )
        self._set_bounds(rev, var, lb=1.0)

    def _apply_forbid(self, rev: Revision) -> None:
        d = rev.directive
        var = self.model.x.get((d.group, d.datacenter))
        if var is not None:  # ineligible pairs have no variable: nothing to do
            self._set_bounds(rev, var, ub=0.0)

    def _apply_retire(self, rev: Revision) -> None:
        site = rev.directive.datacenter
        model = self.model
        affected = [g for (g, dc) in model.x if dc == site]
        # Parity with the cold path, which rebuilds against the reduced
        # state: a group left with no live candidate site makes the
        # model unbuildable there, so fail the same way before mutating.
        for group in affected:
            alive = any(
                dc != site and not (var.ub is not None and var.ub < 0.5)
                for (g, dc), var in model.x.items()
                if g == group
            )
            if not alive:
                raise InfeasibleModelError(
                    f"application group {group!r} fits no target data center "
                    f"once {site!r} is retired; split it first (cf. paper's "
                    "reference [3]) or relax its placement constraints"
                )
        for (g, dc), var in model.x.items():
            if dc == site:
                self._set_bounds(rev, var, ub=0.0)
        used = model.used.get(site)
        if used is not None:
            self._set_bounds(rev, used, ub=0.0)
        pool = model.g.get(site)
        if pool is not None:
            self._set_bounds(rev, pool, ub=0.0)
        for (g, dc), var in model.y.items():
            if dc == site:
                self._set_bounds(rev, var, ub=0.0)
        block = model.segment_blocks.get(site)
        if block is not None:
            for var in (*block.selectors, *block.loads):
                self._set_bounds(rev, var, ub=0.0)
        for (_, _, site_a, site_b), var in model.peer_split.items():
            if site == site_a or site == site_b:
                self._set_bounds(rev, var, ub=0.0)
        for (primary, secondary, _), var in model.j.items():
            if site == primary or site == secondary:
                self._set_bounds(rev, var, ub=0.0)

    def _apply_cap(self, rev: Revision) -> None:
        d = rev.directive
        vars_j = [var for (_, dc), var in self.model.x.items() if dc == d.datacenter]
        if vars_j:
            self.model.problem.add_constraint(
                quicksum(vars_j) <= d.limit, f"cap[{d.datacenter}]"
            )

    def _apply_cap_servers(self, rev: Revision) -> None:
        """Append a server-weighted headroom row for one site.

        ``Σ S_g · X[g, dc] ≤ limit`` in *nominal* server units.  The
        online controller translates a load-scaled utilization target
        into this row: when a site runs hot, shrinking its admissible
        nominal occupancy pushes groups elsewhere on the next re-solve.
        """
        d = rev.directive
        if d.limit is None or d.limit < 0:
            raise ValueError("cap_servers needs a non-negative limit")
        servers = {g.name: g.servers for g in self.model.state.app_groups}
        terms = [
            servers[g] * var
            for (g, dc), var in self.model.x.items()
            if dc == d.datacenter
        ]
        if terms:
            self.model.problem.add_constraint(
                quicksum(terms) <= d.limit, f"cap_servers[{d.datacenter}]"
            )

    def _apply_cap_load(self, rev: Revision) -> None:
        """Append an effective-load headroom row for one site.

        ``Σ w_g · X[g, dc] ≤ limit`` with caller-supplied weights —
        the online controller freezes ``w_g = factor_g × S_g`` at
        trigger time, so the re-solve packs the site to an *effective*
        utilization target under the load actually observed, instead
        of approximating through a site-average factor.
        """
        d = rev.directive
        if d.limit is None or d.limit < 0:
            raise ValueError("cap_load needs a non-negative limit")
        if not d.weights:
            raise ValueError("cap_load needs per-group weights")
        weights = dict(d.weights)
        terms = [
            weights[g] * var
            for (g, dc), var in self.model.x.items()
            if dc == d.datacenter and weights.get(g)
        ]
        if terms:
            self.model.problem.add_constraint(
                quicksum(terms) <= d.limit, f"cap_load[{d.datacenter}]"
            )

    # -- migration-cost objective term -------------------------------------

    def set_move_penalty(
        self, placement: dict[str, str] | None, per_server_cost: float = 0.0
    ) -> None:
        """Install (or clear) the anti-thrash migration-cost term.

        With an incumbent ``placement``, the objective becomes::

            base + Σ_{(g,dc) ∈ X, dc ≠ placement[g]} per_server_cost · S_g · X[g,dc]

        so relocating a group is only worth it when the steady-state
        saving beats its (amortized monthly) move cost.  Passing
        ``None`` (or a zero cost) restores the objective *as built* —
        the identical expression object, so fingerprints return to
        their original values and cached solutions become hits again.

        The term is orthogonal to the directive journal: ``pop`` and
        ``sync`` never touch the objective.
        """
        problem = self.model.problem
        if placement is None or per_server_cost == 0.0:
            problem.objective = self._base_objective
            self.move_penalty = None
            return
        if per_server_cost < 0:
            raise ValueError("move penalty cannot be negative")
        servers = {g.name: g.servers for g in self.model.state.app_groups}
        # The ±1e-4 jitter breaks degeneracy: equal-sized groups make
        # whole faces of move-sets exactly tie, and which optimum a
        # search returns then depends on traversal order — a warm
        # (seeded) and a cold solve could legally disagree.  A tiny
        # deterministic per-variable perturbation makes the optimum
        # unique while staying far below any real cost difference; both
        # arms of a replay see the identical perturbed objective.
        penalty = quicksum(
            per_server_cost * servers[g] * (1.0 + 1e-4 * _jitter(i)) * var
            for i, ((g, dc), var) in enumerate(self.model.x.items())
            if placement.get(g) is not None and dc != placement[g]
        )
        problem.set_objective(self._base_objective + penalty)
        self.move_penalty = (dict(placement), per_server_cost)
