"""Consolidation MILP builder (paper Section III-B).

Builds the linear program

.. math::

    \\min \\sum_j \\sum_i X_{ij}\\Big(S_i (Q_j + αE_j + T_j/β) + D_i W_j
    + L_{ij}\\Big)

subject to assignment, capacity, shared-risk and placement-eligibility
constraints, with economies of scale incorporated via the Schoomer step-
function technique (per-segment binaries).  The DR extension in
:mod:`repro.core.dr` adds secondary-site variables on top of the same
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lp import Problem, Variable, VarType, quicksum
from ..lp.expressions import LinExpr
from ..lp.solution import Solution
from .entities import ApplicationGroup, AsIsState, DataCenter, groups_by_risk
from .wan import inter_site_wan_price, undirected_peer_traffic, wan_cost


class InfeasibleModelError(ValueError):
    """Raised when the as-is state admits no feasible plan at all."""


def placement_cost(
    state: AsIsState,
    group: ApplicationGroup,
    dc: DataCenter,
    *,
    wan_model: str = "metered",
) -> float:
    """Per-placement objective coefficient (everything but space scale).

    Covers power, labor, WAN and the latency penalty :math:`L_{ij}`;
    space enters separately (through the shared step-cost block in the
    monolithic MILP, or the per-site space rate in the decomposition
    engine) so volume discounts apply across groups.  Module-level so
    the decomposition engine can price group blocks without building
    the full :class:`ConsolidationModel`.
    """
    params = state.params
    power_labor = group.servers * (
        params.server_power_kw * dc.power_cost_per_kw
        + dc.labor_cost_per_admin / params.servers_per_admin
    )
    wan = wan_cost(group, dc, params, model=wan_model)
    latency = 0.0
    if group.total_users > 0:
        mean_latency = group.mean_latency(dc.latency_to_users)
        latency = group.latency_penalty.total_penalty(mean_latency, group.total_users)
    return power_labor + wan + latency


@dataclass
class ModelOptions:
    """Knobs controlling how the MILP is constructed.

    Attributes
    ----------
    wan_model:
        ``"metered"`` (per-megabit :math:`D_i W_j`) or ``"vpn"``
        (dedicated distance-priced links).
    economies_of_scale:
        Model volume-discount space pricing exactly with segment
        binaries; when False the base (first-tier) price applies.
    enable_dr:
        Jointly plan a single-failure disaster-recovery assignment.
    dedicated_backups:
        Size backups per group instead of shared pools (multi-failure).
    """

    wan_model: str = "metered"
    economies_of_scale: bool = True
    enable_dr: bool = False
    dedicated_backups: bool = False

    def __post_init__(self) -> None:
        if self.wan_model not in ("metered", "vpn"):
            raise ValueError(f"unknown WAN model {self.wan_model!r}")


@dataclass
class SegmentBlock:
    """LP artifacts of one data center's step-priced space cost."""

    selectors: list[Variable] = field(default_factory=list)  # z_jk
    loads: list[Variable] = field(default_factory=list)      # n_jk


class ConsolidationModel:
    """Owner of the MILP: variables, constraints, objective, extraction.

    Typical use::

        model = ConsolidationModel(state, ModelOptions(enable_dr=True))
        solution = solve(model.problem, backend="highs")
        placement = model.extract_placement(solution)
    """

    def __init__(self, state: AsIsState, options: ModelOptions | None = None) -> None:
        self.state = state
        self.options = options or ModelOptions()
        self.problem = Problem(name=f"etransform-{state.name}")
        #: X[group.name, dc.name] — primary assignment binaries.
        self.x: dict[tuple[str, str], Variable] = {}
        #: Y[group.name, dc.name] — secondary assignment binaries (DR).
        self.y: dict[tuple[str, str], Variable] = {}
        #: G[dc.name] — backup pool size (DR).
        self.g: dict[str, Variable] = {}
        #: U[dc.name] — site-used binaries carrying fixed facility costs.
        self.used: dict[str, Variable] = {}
        #: P[(group_a, group_b, site_a, site_b)] — peer-split linking vars.
        self.peer_split: dict[tuple[str, str, str, str], Variable] = {}
        #: J[(primary, secondary, group)] — linking relaxation (DR, shared pools).
        self.j: dict[tuple[str, str, str], Variable] = {}
        self.segment_blocks: dict[str, SegmentBlock] = {}
        self._placement_cost: dict[tuple[str, str], float] = {}
        self._build()

    # -- construction ----------------------------------------------------
    def _eligible_targets(self, group: ApplicationGroup) -> list[DataCenter]:
        eligible = [dc for dc in self.state.target_datacenters if self.state.placeable(group, dc)]
        if not eligible:
            raise InfeasibleModelError(
                f"application group {group.name!r} ({group.servers} servers) fits no "
                "target data center; split it first (cf. paper's reference [3]) or "
                "relax its placement constraints"
            )
        return eligible

    def placement_cost(self, group: ApplicationGroup, dc: DataCenter) -> float:
        """Per-placement objective coefficient; see the module-level
        :func:`placement_cost` this delegates to."""
        return placement_cost(
            self.state, group, dc, wan_model=self.options.wan_model
        )

    def _build(self) -> None:
        state = self.state
        prob = self.problem

        # Primary assignment binaries, skipping statically impossible pairs.
        for group in state.app_groups:
            for dc in self._eligible_targets(group):
                var = prob.add_binary(f"X[{group.name},{dc.name}]")
                self.x[(group.name, dc.name)] = var
                self._placement_cost[(group.name, dc.name)] = self.placement_cost(group, dc)

        # Constraint 1: every group gets exactly one primary site.
        for group in state.app_groups:
            vars_i = [v for (g, _), v in self.x.items() if g == group.name]
            prob.add_constraint(quicksum(vars_i) == 1, f"assign[{group.name}]")

        if self.options.enable_dr:
            from .dr import add_disaster_recovery

            add_disaster_recovery(self)

        # Constraint 2: capacity per target data center (incl. backups).
        # Sites with a fixed facility cost get a used-binary U_j and the
        # tighter form load <= O_j * U_j, which both enforces capacity
        # and charges the fixed cost whenever anything lands there.
        for dc in state.target_datacenters:
            load = self._primary_load(dc)
            if self.options.enable_dr and state.params.include_backup_in_capacity:
                load = load + self.g[dc.name]
            if dc.fixed_monthly_cost > 0:
                used = prob.add_binary(f"U[{dc.name}]")
                self.used[dc.name] = used
                prob.add_constraint(load <= dc.capacity * used, f"capacity[{dc.name}]")
                if self.options.enable_dr and not state.params.include_backup_in_capacity:
                    # Backups bypass the capacity row then, but still
                    # occupy the facility and must trigger its fixed cost.
                    prob.add_constraint(
                        self.g[dc.name] <= dc.capacity * used,
                        f"used_backup[{dc.name}]",
                    )
            else:
                prob.add_constraint(load <= dc.capacity, f"capacity[{dc.name}]")

        # Shared-risk anti-colocation: one group per risk tag per site.
        for tag, members in groups_by_risk(state.app_groups).items():
            for dc in state.target_datacenters:
                vars_j = [
                    self.x[(m.name, dc.name)]
                    for m in members
                    if (m.name, dc.name) in self.x
                ]
                if len(vars_j) > 1:
                    prob.add_constraint(quicksum(vars_j) <= 1, f"risk[{tag},{dc.name}]")

        # Business impact ω: cap the fraction of groups in any one site.
        omega = state.params.business_impact
        if omega < 1.0:
            cap = omega * len(state.app_groups)
            for dc in state.target_datacenters:
                vars_j = [v for (_, d), v in self.x.items() if d == dc.name]
                if vars_j:
                    prob.add_constraint(quicksum(vars_j) <= cap, f"impact[{dc.name}]")

        objective = self._assignment_objective() + self._space_objective()
        peer_terms = self._peer_traffic_objective()
        if peer_terms is not None:
            objective = objective + peer_terms
        if self.used:
            objective = objective + quicksum(
                var * self.state.target(name).fixed_monthly_cost
                for name, var in self.used.items()
            )
        if self.options.enable_dr:
            objective = objective + self._dr_objective()
        prob.set_objective(objective)

    def _primary_load(self, dc: DataCenter) -> LinExpr:
        """Σ_i X_ij S_i as a linear expression."""
        return quicksum(
            self.x[(g.name, dc.name)] * g.servers
            for g in self.state.app_groups
            if (g.name, dc.name) in self.x
        )

    def _total_load(self, dc: DataCenter) -> LinExpr:
        """Primary load plus backup pool (when DR is on)."""
        load = self._primary_load(dc)
        if self.options.enable_dr:
            load = load + self.g[dc.name]
        return load

    def _assignment_objective(self) -> LinExpr:
        return quicksum(
            var * self._placement_cost[key] for key, var in self.x.items()
        )

    def _space_objective(self) -> LinExpr:
        """Space cost: flat, or exact step pricing with segment binaries.

        Schoomer technique, all-units form: for data center *j* with
        tiers :math:`(lo_k, hi_k, p_k)` introduce binaries :math:`z_{jk}`
        and loads :math:`n_{jk}` with
        :math:`Σ_k n_{jk} = load_j`, :math:`lo_k z_{jk} ≤ n_{jk} ≤ hi_k z_{jk}`,
        :math:`Σ_k z_{jk} ≤ 1`; the space bill is :math:`Σ_k p_k n_{jk}`.
        """
        prob = self.problem
        terms: list[LinExpr] = []
        for dc in self.state.target_datacenters:
            schedule = dc.space_cost.truncated(dc.capacity)
            if not self.options.economies_of_scale or schedule.is_flat:
                base_price = schedule.segments[0].unit_price
                terms.append(self._total_load(dc) * base_price)
                continue
            block = SegmentBlock()
            for k, seg in enumerate(schedule.segments):
                z = prob.add_binary(f"z[{dc.name},{k}]")
                n = prob.add_variable(f"n[{dc.name},{k}]", lb=0.0, ub=float(seg.upper))
                prob.add_constraint(n <= seg.upper * z, f"seg_ub[{dc.name},{k}]")
                prob.add_constraint(n >= seg.lower * z, f"seg_lb[{dc.name},{k}]")
                block.selectors.append(z)
                block.loads.append(n)
                terms.append(n * seg.unit_price)
            prob.add_constraint(quicksum(block.selectors) <= 1, f"seg_one[{dc.name}]")
            prob.add_constraint(
                quicksum(block.loads) == self._total_load(dc), f"seg_link[{dc.name}]"
            )
            self.segment_blocks[dc.name] = block
        return quicksum(terms) if terms else LinExpr()

    def _peer_traffic_objective(self) -> LinExpr | None:
        """Inter-group WAN: pay when a communicating pair is split.

        For each peer pair (i, k) and each ordered site pair (a, b),
        a continuous ``P ≥ X_ia + X_kb − 1`` carries the cross-site
        traffic cost; like the DR linking variables, P is tight at any
        optimum because it only ever adds cost.
        """
        pair_traffic = undirected_peer_traffic(self.state.app_groups)
        if not pair_traffic:
            return None
        prob = self.problem
        terms: list[LinExpr] = []
        sites = self.state.target_datacenters
        known = {g.name for g in self.state.app_groups}
        for pair, traffic in pair_traffic.items():
            name_a, name_b = sorted(pair)
            if name_a not in known or name_b not in known:
                raise InfeasibleModelError(
                    f"peer traffic references unknown group in {pair}"
                )
            for dc_a in sites:
                if (name_a, dc_a.name) not in self.x:
                    continue
                for dc_b in sites:
                    if dc_b.name == dc_a.name:
                        continue
                    if (name_b, dc_b.name) not in self.x:
                        continue
                    price = inter_site_wan_price(dc_a, dc_b)
                    if price <= 0:
                        continue
                    key = (name_a, name_b, dc_a.name, dc_b.name)
                    split = prob.add_variable(
                        f"P[{name_a},{name_b},{dc_a.name},{dc_b.name}]",
                        lb=0.0, ub=1.0,
                    )
                    self.peer_split[key] = split
                    prob.add_constraint(
                        split
                        >= self.x[(name_a, dc_a.name)]
                        + self.x[(name_b, dc_b.name)]
                        - 1,
                        f"peer[{name_a},{name_b},{dc_a.name},{dc_b.name}]",
                    )
                    terms.append(split * (traffic * price))
        return quicksum(terms) if terms else None

    def _dr_objective(self) -> LinExpr:
        """Backup pools: purchase ζ plus standby power & labor shares.

        Backup *space* is already covered because :meth:`_total_load`
        feeds the step-priced space blocks; power and labor scale with
        the standby fractions (cold standby pays neither).
        """
        params = self.state.params
        terms = []
        for dc in self.state.target_datacenters:
            per_server = (
                params.dr_server_cost
                + params.backup_power_fraction
                * params.server_power_kw
                * dc.power_cost_per_kw
                + params.backup_labor_fraction
                * dc.labor_cost_per_admin
                / params.servers_per_admin
            )
            terms.append(self.g[dc.name] * per_server)
        return quicksum(terms)

    # -- extraction ---------------------------------------------------------
    def extract_placement(self, solution: Solution) -> dict[str, str]:
        """Read the primary assignment out of a solution."""
        if not solution.status.has_solution:
            raise ValueError(f"no solution to extract (status={solution.status})")
        placement: dict[str, str] = {}
        for (group, dc), var in self.x.items():
            if solution.value(var, 0.0) > 0.5:
                if group in placement:
                    raise ValueError(f"group {group!r} assigned to two sites")
                placement[group] = dc
        missing = [g.name for g in self.state.app_groups if g.name not in placement]
        if missing:
            raise ValueError(f"solution leaves groups unassigned: {missing[:5]}")
        return placement

    def extract_secondary(self, solution: Solution) -> dict[str, str]:
        """Read the DR (secondary) assignment out of a solution."""
        secondary: dict[str, str] = {}
        for (group, dc), var in self.y.items():
            if solution.value(var, 0.0) > 0.5:
                secondary[group] = dc
        return secondary

    def extract_backup_pools(self, solution: Solution) -> dict[str, int]:
        """Read backup pool sizes G_j (rounded up defensively)."""
        pools: dict[str, int] = {}
        for name, var in self.g.items():
            value = solution.value(var, 0.0)
            if value > 1e-6:
                pools[name] = int(round(value))
        return pools
