"""Cost models: volume-discount step pricing (economies of scale).

The paper models economies of scale as a step function: "the space cost
per server is :math:`Q_{b_j}` if the total number of servers ... is less
than :math:`b_j`; the space cost decreases by :math:`H_j` per server
every time the algorithm places :math:`b_j` more servers" — i.e.
*all-units* volume pricing, incorporated into the LP with the Schoomer
(1964) step-function technique (segment binaries; see
:mod:`repro.core.formulation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PriceSegment:
    """One tier of an all-units price schedule.

    The tier applies when total quantity ``q`` satisfies
    ``lower <= q <= upper``; every unit is then priced at ``unit_price``.
    """

    lower: int
    upper: int | None  # None = unbounded final tier
    unit_price: float

    def contains(self, quantity: int) -> bool:
        if quantity < self.lower:
            return False
        return self.upper is None or quantity <= self.upper


class StepCostFunction:
    """All-units volume-discount schedule.

    Parameters
    ----------
    segments:
        Contiguous tiers starting at quantity 1 (or 0) with
        non-increasing unit prices.  The last tier may be unbounded.

    Examples
    --------
    >>> f = StepCostFunction.volume_discount(base_price=100, step=100, discount=10, floor_price=60)
    >>> f.unit_price(50), f.unit_price(150), f.unit_price(10_000)
    (100.0, 90.0, 60.0)
    """

    def __init__(self, segments: Sequence[PriceSegment]) -> None:
        if not segments:
            raise ValueError("a step cost function needs at least one segment")
        expected_lower = segments[0].lower
        if expected_lower not in (0, 1):
            raise ValueError("first segment must start at quantity 0 or 1")
        previous_upper: int | None = None
        for seg in segments:
            if seg.unit_price < 0:
                raise ValueError("unit prices cannot be negative")
            if previous_upper is not None:
                if seg.lower != previous_upper + 1:
                    raise ValueError("segments must be contiguous")
            if seg.upper is not None and seg.upper < seg.lower:
                raise ValueError("segment upper bound below lower bound")
            previous_upper = seg.upper
            if seg.upper is None and seg is not segments[-1]:
                raise ValueError("only the final segment may be unbounded")
        self._segments = tuple(segments)

    # -- constructors ------------------------------------------------------
    @classmethod
    def flat(cls, unit_price: float) -> "StepCostFunction":
        """A single-tier (no volume discount) schedule."""
        return cls([PriceSegment(1, None, float(unit_price))])

    @classmethod
    def volume_discount(
        cls,
        base_price: float,
        step: int,
        discount: float,
        floor_price: float,
        max_quantity: int | None = None,
    ) -> "StepCostFunction":
        """Paper-style schedule: price drops by ``discount`` every ``step`` units.

        ``floor_price`` caps how cheap a unit can get; ``max_quantity``
        optionally bounds the final tier (else it is unbounded).
        """
        if step <= 0:
            raise ValueError("step must be positive")
        if floor_price < 0 or floor_price > base_price:
            raise ValueError("floor price must be within [0, base_price]")
        segments: list[PriceSegment] = []
        lower = 1
        price = float(base_price)
        while True:
            at_floor = price - discount < floor_price
            upper: int | None = lower + step - 1
            if at_floor:
                upper = max_quantity
            elif max_quantity is not None and upper >= max_quantity:
                upper = max_quantity
                at_floor = True
            segments.append(PriceSegment(lower, upper, max(price, floor_price)))
            if at_floor:
                break
            lower = upper + 1
            price -= discount
        return cls(segments)

    # -- queries -----------------------------------------------------------
    @property
    def segments(self) -> tuple[PriceSegment, ...]:
        return self._segments

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def is_flat(self) -> bool:
        return len(self._segments) == 1

    @property
    def max_quantity(self) -> int | None:
        """Largest priceable quantity (None when unbounded)."""
        return self._segments[-1].upper

    def segment_for(self, quantity: int) -> PriceSegment:
        """The tier pricing the given total quantity."""
        if quantity < 0:
            raise ValueError("quantity cannot be negative")
        for seg in self._segments:
            if seg.contains(quantity):
                return seg
        raise ValueError(
            f"quantity {quantity} exceeds the schedule's maximum "
            f"({self.max_quantity})"
        )

    def unit_price(self, quantity: int) -> float:
        """All-units price per unit when ``quantity`` units are bought."""
        if quantity == 0:
            return self._segments[0].unit_price
        return self.segment_for(quantity).unit_price

    def total_cost(self, quantity: int) -> float:
        """Total cost of ``quantity`` units under all-units pricing."""
        if quantity == 0:
            return 0.0
        return self.unit_price(quantity) * quantity

    def scaled(self, factor: float) -> "StepCostFunction":
        """Schedule with every unit price multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return StepCostFunction(
            [PriceSegment(s.lower, s.upper, s.unit_price * factor) for s in self._segments]
        )

    def truncated(self, max_quantity: int) -> "StepCostFunction":
        """Schedule limited to quantities ``<= max_quantity``.

        Used to bound LP segment variables by data-center capacity.
        """
        if max_quantity < 1:
            raise ValueError("max_quantity must be at least 1")
        out: list[PriceSegment] = []
        for seg in self._segments:
            if seg.lower > max_quantity:
                break
            upper = seg.upper
            if upper is None or upper > max_quantity:
                upper = max_quantity
            out.append(PriceSegment(seg.lower, upper, seg.unit_price))
        return StepCostFunction(out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepCostFunction):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{s.lower},{'∞' if s.upper is None else s.upper}]@{s.unit_price:g}"
            for s in self._segments
        )
        return f"StepCostFunction({parts})"


def monthly_power_cost_per_kw(price_cents_per_kwh: float, hours: float = 730.0) -> float:
    """Convert a retail electricity price (¢/kWh) to $/kW/month.

    The paper's :math:`E_j` is a monthly dollar figure per kilowatt; EIA
    publishes cents per kilowatt-hour, so :math:`E_j = price × hours / 100`.
    """
    if price_cents_per_kwh < 0:
        raise ValueError("electricity price cannot be negative")
    return price_cents_per_kwh * hours / 100.0


def admins_required(servers: int, servers_per_admin: float) -> float:
    """Fractional administrator headcount for a server count.

    The LP uses the fractional form ``servers / β`` exactly as the paper
    does; reports may ceil it for presentation.
    """
    if servers < 0:
        raise ValueError("server count cannot be negative")
    return servers / servers_per_admin


def ceil_admins(servers: int, servers_per_admin: float) -> int:
    """Whole administrators needed (for human-readable reports)."""
    return int(math.ceil(admins_required(servers, servers_per_admin)))
