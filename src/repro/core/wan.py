"""WAN cost models (Section III-B).

Two pricing regimes from the paper:

* **Metered** — the data center charges :math:`W_j` dollars per megabit,
  so a group costs :math:`D_i W_j` wherever its users are.
* **Dedicated VPN links** — the group leases point-to-point links to
  each user location; the link count toward location *r* is
  :math:`C_{ir} D_i / (γ · Σ_r C_{ir})` and each link costs the
  distance-dependent monthly fee :math:`F_{jr}`.
"""

from __future__ import annotations

from .entities import ApplicationGroup, CostParameters, DataCenter


def metered_wan_cost(group: ApplicationGroup, datacenter: DataCenter) -> float:
    """Per-megabit WAN cost :math:`D_i W_j`."""
    return group.monthly_data_mb * datacenter.wan_cost_per_mb


def vpn_links_required(
    group: ApplicationGroup, location: str, params: CostParameters
) -> float:
    """Fractional dedicated links to one user location.

    Follows the paper's equal-share assumption: each user exchanges the
    same share of :math:`D_i`, so location *r* needs
    :math:`C_{ir} D_i / (γ Σ_r C_{ir})` links.  The fractional form is
    kept (as in the LP); reports may ceil it.
    """
    total_users = group.total_users
    if total_users == 0:
        return 0.0
    share = group.users.get(location, 0.0) / total_users
    return share * group.monthly_data_mb / params.vpn_link_capacity_mb


def vpn_wan_cost(
    group: ApplicationGroup, datacenter: DataCenter, params: CostParameters
) -> float:
    """Dedicated-VPN WAN cost of placing ``group`` at ``datacenter``.

    Raises
    ------
    KeyError
        When the data center lacks a link price for a location where the
        group has users (a model-specification error worth failing on).
    """
    total = 0.0
    for location, count in group.users.items():
        if count == 0:
            continue
        links = vpn_links_required(group, location, params)
        if links == 0.0:
            continue
        try:
            link_price = datacenter.vpn_link_cost[location]
        except KeyError:
            raise KeyError(
                f"data center {datacenter.name!r} has no VPN link price for "
                f"user location {location!r}"
            ) from None
        total += links * link_price
    return total


def wan_cost(
    group: ApplicationGroup,
    datacenter: DataCenter,
    params: CostParameters,
    model: str = "metered",
) -> float:
    """Dispatch on the WAN pricing regime (``"metered"`` or ``"vpn"``)."""
    if model == "metered":
        return metered_wan_cost(group, datacenter)
    if model == "vpn":
        return vpn_wan_cost(group, datacenter, params)
    raise ValueError(f"unknown WAN cost model {model!r}")


def distance_priced_link(base_monthly: float, per_km: float, distance_km: float) -> float:
    """Simple distance-based VPN link tariff :math:`F = b + r·d`."""
    if distance_km < 0:
        raise ValueError("distance cannot be negative")
    return base_monthly + per_km * distance_km


def inter_site_wan_price(dc_a: DataCenter, dc_b: DataCenter) -> float:
    """$/Mb for traffic between two sites (0 inside one site).

    Both ends bill their metered WAN rate on egress/ingress, so the
    inter-site price is the mean of the two sites' per-megabit rates.
    """
    if dc_a.name == dc_b.name:
        return 0.0
    return (dc_a.wan_cost_per_mb + dc_b.wan_cost_per_mb) / 2.0


def undirected_peer_traffic(groups) -> dict[frozenset, float]:
    """Fold directed ``peers`` declarations into undirected pair totals.

    Traffic declared on either (or both) sides of a pair is summed; the
    result is keyed by ``frozenset({name_a, name_b})``.
    """
    totals: dict[frozenset, float] = {}
    for group in groups:
        for peer, traffic in group.peers.items():
            if traffic <= 0:
                continue
            key = frozenset((group.name, peer))
            totals[key] = totals.get(key, 0.0) + traffic
    return totals
