"""The eTransform planner facade (paper Fig. 5).

Wires the four components together: the transformation & consolidation
module (:mod:`repro.core.formulation`), the optimization engine
(:mod:`repro.lp`), the output-generation subroutine (extraction +
:func:`repro.core.plan.evaluate_plan`), and — via
:mod:`repro.core.iterative` — the admin interface for iterative
modification.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..lp import (
    SolveCache,
    SolveOptions,
    SolveStatus,
    solve,
    solve_with_presolve,
    write_lp_file,
)
from .formulation import ConsolidationModel, ModelOptions
from .entities import AsIsState
from .plan import TransformationPlan, evaluate_plan
from .validation import validate_plan, validate_state


class PlanningError(RuntimeError):
    """The optimizer failed to produce a usable plan."""


@dataclass
class PlannerOptions:
    """End-to-end planning options (model + solver).

    ``solve_options`` is the typed way to configure the solver (a
    :class:`repro.lp.SolveOptions`); the legacy ``solver_options`` dict
    (``time_limit``, ``mip_rel_gap``, ``node_limit``, ...) still works
    and is mapped onto the same record — set one or the other, not both.
    ``lp_export_path`` optionally dumps the model in CPLEX LP format
    before solving, mirroring the paper's LP-file hand-off.
    ``presolve`` routes the solve through
    :func:`repro.lp.solve_with_presolve`, so the plan's solver stats
    also report rows/columns eliminated before the real solve.

    ``method`` selects the planning engine for :func:`repro.solve`
    (``"auto"``, ``"milp"``, ``"decomposition"`` or ``"greedy"``);
    ``jobs`` is the process fan-out the decomposition engine uses for
    block extraction and pricing (``<= 1`` stays in-process).
    """

    wan_model: str = "metered"
    economies_of_scale: bool = True
    enable_dr: bool = False
    dedicated_backups: bool = False
    backend: str = "auto"
    solver_options: dict = field(default_factory=dict)
    solve_options: SolveOptions | None = None
    lp_export_path: str | None = None
    validate_inputs: bool = True
    presolve: bool = False
    method: str = "auto"
    jobs: int = 1

    #: Planning engines :func:`repro.solve` accepts.
    METHODS = ("auto", "milp", "decomposition", "greedy")

    #: Option keys accepted from untrusted wire payloads (service API).
    WIRE_FIELDS = (
        "wan_model",
        "economies_of_scale",
        "enable_dr",
        "dedicated_backups",
        "backend",
        "solver_options",
        "presolve",
        "method",
        "jobs",
    )

    #: Largest fan-out a wire payload may request (guards the service
    #: from a remote caller spawning unbounded worker processes).
    MAX_WIRE_JOBS = 64

    def __post_init__(self) -> None:
        if self.method not in self.METHODS:
            raise ValueError(
                f"unknown planning method {self.method!r} "
                f"(expected one of {', '.join(self.METHODS)})"
            )
        if isinstance(self.jobs, bool) or not isinstance(self.jobs, int):
            raise ValueError(
                f"jobs must be an integer, got {self.jobs!r}"
            )

    @classmethod
    def from_wire(cls, data: dict | None) -> "PlannerOptions":
        """Build options from a JSON payload, rejecting unknown keys.

        The planning service feeds request bodies through this; only the
        :data:`WIRE_FIELDS` subset is accepted — deliberately *not*
        ``lp_export_path`` (a remote caller must not name server-side
        files) nor ``validate_inputs``.
        """
        data = dict(data or {})
        unknown = sorted(set(data) - set(cls.WIRE_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown planner option(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(cls.WIRE_FIELDS)})"
            )
        solver_options = data.pop("solver_options", {})
        if not isinstance(solver_options, dict):
            raise ValueError("solver_options must be an object")
        if "jobs" in data:
            jobs = data["jobs"]
            if isinstance(jobs, bool) or not isinstance(jobs, int):
                raise ValueError(f"jobs must be an integer, got {jobs!r}")
            if not 0 <= jobs <= cls.MAX_WIRE_JOBS:
                raise ValueError(
                    f"jobs must be between 0 and {cls.MAX_WIRE_JOBS}, got {jobs}"
                )
        return cls(solver_options=dict(solver_options), **data)

    def as_wire(self) -> dict:
        """The :data:`WIRE_FIELDS` subset as a JSON-safe dict."""
        return {
            "wan_model": self.wan_model,
            "economies_of_scale": self.economies_of_scale,
            "enable_dr": self.enable_dr,
            "dedicated_backups": self.dedicated_backups,
            "backend": self.backend,
            "solver_options": dict(self.solver_options),
            "presolve": self.presolve,
            "method": self.method,
            "jobs": self.jobs,
        }

    def model_options(self) -> ModelOptions:
        return ModelOptions(
            wan_model=self.wan_model,
            economies_of_scale=self.economies_of_scale,
            enable_dr=self.enable_dr,
            dedicated_backups=self.dedicated_backups,
        )

    def resolved_solve_options(self) -> SolveOptions:
        """The typed solver options, folding in the legacy dict form."""
        if self.solve_options is not None:
            if self.solver_options:
                raise ValueError(
                    "set either solve_options or the legacy solver_options "
                    "dict, not both"
                )
            return self.solve_options
        return SolveOptions(**self.solver_options)


class ETransformPlanner:
    """Generate a "to-be" transformation plan from an "as-is" state.

    Example
    -------
    ::

        planner = ETransformPlanner(state, PlannerOptions(enable_dr=True))
        plan = planner.build_plan()
        print(plan.breakdown.total, plan.datacenters_used)
    """

    def __init__(self, state: AsIsState, options: PlannerOptions | None = None) -> None:
        self.state = state
        self.options = options or PlannerOptions()
        if self.options.validate_inputs:
            validate_state(state, require_dr_headroom=self.options.enable_dr)
        self.model = ConsolidationModel(state, self.options.model_options())
        self.last_solution = None

    def build_plan(self) -> TransformationPlan:
        """Build, solve and score the transformation plan (MILP path).

        This is the monolithic-MILP engine behind
        ``repro.solve(state, method="milp")``; prefer that entry point
        in new code.

        Raises
        ------
        PlanningError
            When the model is infeasible or the solver fails.
        """
        return self.finish_plan(self.solve_model())

    def plan(self) -> TransformationPlan:
        """Deprecated alias of :meth:`build_plan`.

        Use :func:`repro.solve` (which also unlocks the decomposition
        and greedy engines via ``method=``) or :meth:`build_plan`.
        """
        warnings.warn(
            "ETransformPlanner.plan() is deprecated; use "
            "repro.solve(state, options=...) or build_plan()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.build_plan()

    def solve_model(self, cache: SolveCache | None = None):
        """Solve the built model and return the raw solution.

        ``cache`` routes the solve through a :class:`repro.lp.SolveCache`
        so a refinement session's re-solves can reuse previous work; the
        incremental engine (:mod:`repro.core.incremental`) passes the
        session cache here.  Presolve rebuilds a reduced problem per
        call, so it bypasses the cache.
        """
        if self.options.lp_export_path:
            write_lp_file(self.model.problem, self.options.lp_export_path)

        solve_options = self.options.resolved_solve_options()
        if self.options.presolve:
            solution = solve_with_presolve(
                self.model.problem,
                backend=self.options.backend,
                options=solve_options,
            )
        else:
            solution = solve(
                self.model.problem,
                backend=self.options.backend,
                options=solve_options,
                cache=cache,
            )
        self.last_solution = solution
        if solution.status is SolveStatus.INFEASIBLE:
            raise PlanningError(
                "the consolidation model is infeasible: total capacity, region "
                "constraints or the business-impact cap ω are too tight"
            )
        if not solution.status.has_solution:
            raise PlanningError(
                f"solver returned {solution.status.value}: {solution.message}"
            )
        return solution

    def finish_plan(self, solution, state: AsIsState | None = None) -> TransformationPlan:
        """Extract, evaluate and validate a plan from a solved model.

        ``state`` overrides the evaluation state — the incremental
        engine passes the directive-reduced state (retired sites
        filtered out) so incremental plans match the cold rebuild path
        bit-for-bit.
        """
        state = self.state if state is None else state
        placement = self.model.extract_placement(solution)
        secondary = (
            self.model.extract_secondary(solution) if self.options.enable_dr else {}
        )
        plan = evaluate_plan(
            state,
            placement,
            secondary=secondary,
            wan_model=self.options.wan_model,
            backup_sharing="dedicated" if self.options.dedicated_backups else "shared",
            solver=solution.solver,
            objective=solution.objective,
        )
        plan.solver_stats = solution.stats
        validate_plan(state, plan)
        return plan


def plan_consolidation(
    state: AsIsState,
    enable_dr: bool = False,
    backend: str = "auto",
    wan_model: str = "metered",
    economies_of_scale: bool = True,
    **solver_options,
) -> TransformationPlan:
    """Deprecated one-call wrapper; use :func:`repro.solve` instead.

    Kept as a thin shim over the unified entry point — it always runs
    the monolithic MILP engine, exactly as it did before the redesign.
    """
    warnings.warn(
        "plan_consolidation() is deprecated; use "
        "repro.solve(state, method='milp', options=PlannerOptions(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import solve as unified_solve

    options = PlannerOptions(
        wan_model=wan_model,
        economies_of_scale=economies_of_scale,
        enable_dr=enable_dr,
        backend=backend,
        solver_options=solver_options,
    )
    return unified_solve(state, method="milp", options=options).plan
