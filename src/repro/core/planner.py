"""The eTransform planner facade (paper Fig. 5).

Wires the four components together: the transformation & consolidation
module (:mod:`repro.core.formulation`), the optimization engine
(:mod:`repro.lp`), the output-generation subroutine (extraction +
:func:`repro.core.plan.evaluate_plan`), and — via
:mod:`repro.core.iterative` — the admin interface for iterative
modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lp import SolveStatus, solve, solve_with_presolve, write_lp_file
from .formulation import ConsolidationModel, ModelOptions
from .entities import AsIsState
from .plan import TransformationPlan, evaluate_plan
from .validation import validate_plan, validate_state


class PlanningError(RuntimeError):
    """The optimizer failed to produce a usable plan."""


@dataclass
class PlannerOptions:
    """End-to-end planning options (model + solver).

    ``solver_options`` is forwarded to :func:`repro.lp.solve`
    (``time_limit``, ``mip_rel_gap``, ``node_limit``, ...).
    ``lp_export_path`` optionally dumps the model in CPLEX LP format
    before solving, mirroring the paper's LP-file hand-off.
    ``presolve`` routes the solve through
    :func:`repro.lp.solve_with_presolve`, so the plan's solver stats
    also report rows/columns eliminated before the real solve.
    """

    wan_model: str = "metered"
    economies_of_scale: bool = True
    enable_dr: bool = False
    dedicated_backups: bool = False
    backend: str = "auto"
    solver_options: dict = field(default_factory=dict)
    lp_export_path: str | None = None
    validate_inputs: bool = True
    presolve: bool = False

    def model_options(self) -> ModelOptions:
        return ModelOptions(
            wan_model=self.wan_model,
            economies_of_scale=self.economies_of_scale,
            enable_dr=self.enable_dr,
            dedicated_backups=self.dedicated_backups,
        )


class ETransformPlanner:
    """Generate a "to-be" transformation plan from an "as-is" state.

    Example
    -------
    ::

        planner = ETransformPlanner(state, PlannerOptions(enable_dr=True))
        plan = planner.plan()
        print(plan.breakdown.total, plan.datacenters_used)
    """

    def __init__(self, state: AsIsState, options: PlannerOptions | None = None) -> None:
        self.state = state
        self.options = options or PlannerOptions()
        if self.options.validate_inputs:
            validate_state(state, require_dr_headroom=self.options.enable_dr)
        self.model = ConsolidationModel(state, self.options.model_options())
        self.last_solution = None

    def plan(self) -> TransformationPlan:
        """Build, solve and score the transformation plan.

        Raises
        ------
        PlanningError
            When the model is infeasible or the solver fails.
        """
        if self.options.lp_export_path:
            write_lp_file(self.model.problem, self.options.lp_export_path)

        solve_fn = solve_with_presolve if self.options.presolve else solve
        solution = solve_fn(
            self.model.problem,
            backend=self.options.backend,
            **self.options.solver_options,
        )
        self.last_solution = solution
        if solution.status is SolveStatus.INFEASIBLE:
            raise PlanningError(
                "the consolidation model is infeasible: total capacity, region "
                "constraints or the business-impact cap ω are too tight"
            )
        if not solution.status.has_solution:
            raise PlanningError(
                f"solver returned {solution.status.value}: {solution.message}"
            )

        placement = self.model.extract_placement(solution)
        secondary = (
            self.model.extract_secondary(solution) if self.options.enable_dr else {}
        )
        plan = evaluate_plan(
            self.state,
            placement,
            secondary=secondary,
            wan_model=self.options.wan_model,
            backup_sharing="dedicated" if self.options.dedicated_backups else "shared",
            solver=solution.solver,
            objective=solution.objective,
        )
        plan.solver_stats = solution.stats
        validate_plan(self.state, plan)
        return plan


def plan_consolidation(
    state: AsIsState,
    enable_dr: bool = False,
    backend: str = "auto",
    wan_model: str = "metered",
    economies_of_scale: bool = True,
    **solver_options,
) -> TransformationPlan:
    """One-call convenience wrapper around :class:`ETransformPlanner`."""
    options = PlannerOptions(
        wan_model=wan_model,
        economies_of_scale=economies_of_scale,
        enable_dr=enable_dr,
        backend=backend,
        solver_options=solver_options,
    )
    return ETransformPlanner(state, options).plan()
