"""Admin interface for iterative modification (paper Fig. 5).

Lets an administrator take an initial plan and steer it — pin a group to
a site, forbid a placement, retire a candidate site, cap a site's group
count — then re-solve.  Each refinement rebuilds the model with the
accumulated directives, exactly like the paper's "interface for
iterative modification" feeds extra constraints back into the LP.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .entities import AsIsState
from .plan import TransformationPlan
from .planner import ETransformPlanner, PlannerOptions
from ..lp import quicksum


@dataclass
class Directive:
    """One administrator steering action."""

    kind: str  # "pin" | "forbid" | "retire_site" | "cap_groups"
    group: str | None = None
    datacenter: str | None = None
    limit: int | None = None

    def describe(self) -> str:
        if self.kind == "pin":
            return f"pin {self.group!r} to {self.datacenter!r}"
        if self.kind == "forbid":
            return f"forbid {self.group!r} in {self.datacenter!r}"
        if self.kind == "retire_site":
            return f"retire site {self.datacenter!r}"
        if self.kind == "cap_groups":
            return f"cap {self.datacenter!r} at {self.limit} groups"
        return self.kind


@dataclass
class IterativeSession:
    """Stateful refinement loop over a single as-is state.

    Example
    -------
    ::

        session = IterativeSession(state, PlannerOptions())
        first = session.plan()
        session.forbid("payroll", "dc-cheap")
        second = session.plan()     # re-solved with the new constraint
        session.undo()              # drop the last directive
    """

    state: AsIsState
    options: PlannerOptions = field(default_factory=PlannerOptions)
    directives: list[Directive] = field(default_factory=list)
    history: list[TransformationPlan] = field(default_factory=list)

    # -- directive builders ------------------------------------------------
    def pin(self, group: str, datacenter: str) -> None:
        """Force ``group``'s primary site to ``datacenter``."""
        self.state.group(group)
        self.state.target(datacenter)
        self.directives.append(Directive("pin", group=group, datacenter=datacenter))

    def forbid(self, group: str, datacenter: str) -> None:
        """Exclude ``datacenter`` as the primary site of ``group``."""
        self.state.group(group)
        self.state.target(datacenter)
        self.directives.append(Directive("forbid", group=group, datacenter=datacenter))

    def retire_site(self, datacenter: str) -> None:
        """Remove a candidate site from consideration entirely."""
        self.state.target(datacenter)
        self.directives.append(Directive("retire_site", datacenter=datacenter))

    def cap_groups(self, datacenter: str, limit: int) -> None:
        """Limit how many groups ``datacenter`` may host."""
        if limit < 0:
            raise ValueError("group cap cannot be negative")
        self.state.target(datacenter)
        self.directives.append(
            Directive("cap_groups", datacenter=datacenter, limit=limit)
        )

    def undo(self) -> Directive:
        """Remove and return the most recent directive."""
        if not self.directives:
            raise IndexError("no directives to undo")
        return self.directives.pop()

    # -- solving ------------------------------------------------------------
    def plan(self) -> TransformationPlan:
        """Re-solve under the accumulated directives and record the plan."""
        working_state = self._apply_state_directives()
        planner = ETransformPlanner(working_state, replace(self.options))
        self._apply_model_directives(planner)
        result = planner.plan()
        self.history.append(result)
        return result

    def _apply_state_directives(self) -> AsIsState:
        """Directives expressible as state edits (site retirement)."""
        retired = {
            d.datacenter for d in self.directives if d.kind == "retire_site"
        }
        if not retired:
            return self.state
        targets = [
            dc for dc in self.state.target_datacenters if dc.name not in retired
        ]
        return replace(self.state, target_datacenters=targets)

    def _apply_model_directives(self, planner: ETransformPlanner) -> None:
        """Directives expressible as extra model constraints."""
        model = planner.model
        prob = model.problem
        for d in self.directives:
            if d.kind == "pin":
                key = (d.group, d.datacenter)
                if key not in model.x:
                    raise ValueError(
                        f"cannot pin: {d.group!r} is not placeable in {d.datacenter!r}"
                    )
                prob.add_constraint(
                    model.x[key] >= 1, f"pin[{d.group},{d.datacenter}]"
                )
            elif d.kind == "forbid":
                key = (d.group, d.datacenter)
                if key in model.x:
                    prob.add_constraint(
                        model.x[key] <= 0, f"forbid[{d.group},{d.datacenter}]"
                    )
            elif d.kind == "cap_groups":
                vars_j = [
                    var for (_, dc), var in model.x.items() if dc == d.datacenter
                ]
                if vars_j:
                    prob.add_constraint(
                        quicksum(vars_j) <= d.limit, f"cap[{d.datacenter}]"
                    )

    def describe(self) -> list[str]:
        """Human-readable list of active directives."""
        return [d.describe() for d in self.directives]
