"""Admin interface for iterative modification (paper Fig. 5).

Lets an administrator take an initial plan and steer it — pin a group to
a site, forbid a placement, retire a candidate site, cap a site's group
count — then re-solve.  By default each refinement is *incremental*: the
model built for the first ``plan()`` call stays alive, directives are
applied to it as bound/row deltas by
:class:`repro.core.incremental.RevisionedModel`, and re-solves run
through a :class:`repro.lp.SolveCache` (fingerprint hits, the
tightening shortcut, persistent relaxation context, incumbent seeding).
``incremental=False`` restores the original rebuild-from-scratch
behaviour, which the incremental path is cross-checked against.

Conflicting directives (pin a group to a site and also forbid it there,
pin to a retired site, pin one group to two sites, pin more groups to a
site than its cap allows) are rejected at directive time with a
:class:`DirectiveConflictError` naming both directives, instead of
surfacing later as an opaque infeasible model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .entities import AsIsState
from .incremental import Directive, RevisionedModel
from .plan import TransformationPlan
from .planner import ETransformPlanner, PlannerOptions
from ..lp import SolveCache, quicksum


class DirectiveConflictError(ValueError):
    """Two directives contradict each other; raised at directive time."""

    def __init__(self, new: Directive, earlier: Directive, reason: str) -> None:
        self.new = new
        self.earlier = earlier
        super().__init__(
            f"directive ({new.describe()}) conflicts with earlier directive "
            f"({earlier.describe()}): {reason}"
        )


def find_directive_conflict(
    existing: list[Directive], new: Directive
) -> tuple[Directive, str] | None:
    """First earlier directive that contradicts ``new``, with the reason.

    Returns ``None`` when ``new`` is compatible with everything seen so
    far.  Pure function so both session modes (and external tooling)
    share one notion of conflict.
    """
    if new.kind == "pin":
        for d in existing:
            if d.kind == "forbid" and (d.group, d.datacenter) == (new.group, new.datacenter):
                return d, "the placement is forbidden"
            if d.kind == "retire_site" and d.datacenter == new.datacenter:
                return d, "the site is retired"
            if d.kind == "pin" and d.group == new.group and d.datacenter != new.datacenter:
                return d, "a group has exactly one primary site"
        for d in existing:
            if d.kind == "cap_groups" and d.datacenter == new.datacenter:
                pinned = {
                    p.group
                    for p in existing
                    if p.kind == "pin" and p.datacenter == new.datacenter
                }
                pinned.add(new.group)
                if len(pinned) > (d.limit or 0):
                    return d, f"{len(pinned)} groups pinned there exceed the cap"
    elif new.kind == "forbid":
        for d in existing:
            if d.kind == "pin" and (d.group, d.datacenter) == (new.group, new.datacenter):
                return d, "the group is pinned to that site"
    elif new.kind == "retire_site":
        for d in existing:
            if d.kind == "pin" and d.datacenter == new.datacenter:
                return d, "a group is pinned to that site"
    elif new.kind == "cap_groups":
        pinned = {
            p.group
            for p in existing
            if p.kind == "pin" and p.datacenter == new.datacenter
        }
        if len(pinned) > (new.limit or 0):
            for d in existing:
                if d.kind == "pin" and d.datacenter == new.datacenter:
                    return d, f"{len(pinned)} groups are already pinned there"
    return None


@dataclass
class IterativeSession:
    """Stateful refinement loop over a single as-is state.

    Example
    -------
    ::

        session = IterativeSession(state, PlannerOptions())
        first = session.plan()
        session.forbid("payroll", "dc-cheap")
        second = session.plan()     # incremental re-solve, not a rebuild
        session.undo()              # drop the last directive
        third = session.plan()      # == first, straight from the cache
    """

    state: AsIsState
    options: PlannerOptions = field(default_factory=PlannerOptions)
    incremental: bool = True
    directives: list[Directive] = field(default_factory=list)
    history: list[TransformationPlan] = field(default_factory=list)
    _planner: ETransformPlanner | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _engine: RevisionedModel | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _cache: SolveCache | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- directive builders ------------------------------------------------
    def _register(self, directive: Directive) -> None:
        conflict = find_directive_conflict(self.directives, directive)
        if conflict is not None:
            earlier, reason = conflict
            raise DirectiveConflictError(directive, earlier, reason)
        self.directives.append(directive)

    def pin(self, group: str, datacenter: str) -> None:
        """Force ``group``'s primary site to ``datacenter``."""
        self.state.group(group)
        self.state.target(datacenter)
        self._register(Directive("pin", group=group, datacenter=datacenter))

    def forbid(self, group: str, datacenter: str) -> None:
        """Exclude ``datacenter`` as the primary site of ``group``."""
        self.state.group(group)
        self.state.target(datacenter)
        self._register(Directive("forbid", group=group, datacenter=datacenter))

    def retire_site(self, datacenter: str) -> None:
        """Remove a candidate site from consideration entirely."""
        self.state.target(datacenter)
        self._register(Directive("retire_site", datacenter=datacenter))

    def cap_groups(self, datacenter: str, limit: int) -> None:
        """Limit how many groups ``datacenter`` may host."""
        if limit < 0:
            raise ValueError("group cap cannot be negative")
        self.state.target(datacenter)
        self._register(Directive("cap_groups", datacenter=datacenter, limit=limit))

    def undo(self) -> Directive:
        """Remove and return the most recent directive.

        In incremental mode the model delta is unwound at the next
        ``plan()`` (one journal pop), and the re-solve is typically a
        fingerprint cache hit.
        """
        if not self.directives:
            raise IndexError("no directives to undo")
        return self.directives.pop()

    # -- solving ------------------------------------------------------------
    def plan(self) -> TransformationPlan:
        """Re-solve under the accumulated directives and record the plan."""
        result = (
            self._plan_incremental() if self.incremental else self._plan_cold()
        )
        self.history.append(result)
        return result

    def _plan_cold(self) -> TransformationPlan:
        """Original semantics: rebuild the model from scratch every time."""
        working_state = self._apply_state_directives()
        planner = ETransformPlanner(working_state, replace(self.options))
        self._apply_model_directives(planner)
        return planner.build_plan()

    def _plan_incremental(self) -> TransformationPlan:
        if self._planner is None:
            self._planner = ETransformPlanner(self.state, replace(self.options))
            self._engine = RevisionedModel(self._planner.model)
            self._cache = SolveCache()
        self._engine.sync(self.directives)
        solution = self._planner.solve_model(cache=self._cache)
        # Evaluate/validate against the directive-reduced state so the
        # resulting plan is indistinguishable from the cold path's.
        return self._planner.finish_plan(
            solution, state=self._apply_state_directives()
        )

    def _apply_state_directives(self) -> AsIsState:
        """Directives expressible as state edits (site retirement)."""
        retired = {
            d.datacenter for d in self.directives if d.kind == "retire_site"
        }
        if not retired:
            return self.state
        targets = [
            dc for dc in self.state.target_datacenters if dc.name not in retired
        ]
        return replace(self.state, target_datacenters=targets)

    def _apply_model_directives(self, planner: ETransformPlanner) -> None:
        """Directives expressible as extra model constraints (cold path)."""
        model = planner.model
        prob = model.problem
        for d in self.directives:
            if d.kind == "pin":
                key = (d.group, d.datacenter)
                if key not in model.x:
                    raise ValueError(
                        f"cannot pin: {d.group!r} is not placeable in {d.datacenter!r}"
                    )
                prob.add_constraint(
                    model.x[key] >= 1, f"pin[{d.group},{d.datacenter}]"
                )
            elif d.kind == "forbid":
                key = (d.group, d.datacenter)
                if key in model.x:
                    prob.add_constraint(
                        model.x[key] <= 0, f"forbid[{d.group},{d.datacenter}]"
                    )
            elif d.kind == "cap_groups":
                vars_j = [
                    var for (_, dc), var in model.x.items() if dc == d.datacenter
                ]
                if vars_j:
                    prob.add_constraint(
                        quicksum(vars_j) <= d.limit, f"cap[{d.datacenter}]"
                    )

    def describe(self) -> list[str]:
        """Human-readable list of active directives."""
        return [d.describe() for d in self.directives]

    @property
    def solve_cache(self) -> SolveCache | None:
        """The session's solve cache (``None`` before the first plan)."""
        return self._cache
