"""Dantzig-Wolfe / Lagrangian decomposition engine (ROADMAP item 2).

The consolidation MILP is nearly block-separable: each application
group independently picks one eligible target site, and blocks couple
only through the per-target capacity rows.  This module exploits that:

* **Group-block extraction** — :func:`extract_group_blocks` prices
  every (group, target) pair with the module-level
  :func:`repro.core.formulation.placement_cost` plus a per-site space
  rate, *without* building the monolithic MILP (which is exactly what
  becomes infeasible at 100k+ servers).  The cost-matrix build fans
  out across worker processes via :func:`repro.parallel.parallel_map`.
* **Restricted master** — :class:`repro.lp.master.RestrictedMasterLP`
  over the generated placement columns, solved by the builtin revised
  simplex with warm-started re-solves, yielding capacity duals
  :math:`\\pi_j \\le 0` and convexity duals :math:`\\mu_g`.
* **Parallel pricing** — per-group subproblems ("best site under the
  current duals") are chunked across the same worker pool; each round
  adds every column with negative reduced cost.
* **Dual stabilization** — Wentges smoothing: separation runs at
  :math:`\\tilde\\pi = \\alpha\\,\\pi_{master} + (1-\\alpha)\\,\\pi_{best}`,
  with a mis-pricing re-check at the exact master duals before
  declaring convergence.
* **Subgradient fallback** — beyond ``master_group_limit`` groups the
  master basis (one convexity row per group) stops being cheap, so the
  engine coordinates the same pricing oracle with a projected
  subgradient ascent on the capacity duals instead; the Lagrangian
  function value is the same lower bound the master would certify.
* **Primal rounding** — the greedy baseline, guided by the master's
  fractional support and the final duals, rounds to an integral plan
  (capacity-, risk- and ω-feasible), followed by a single local
  reassignment pass; the exact duality gap against the Lagrangian
  bound is reported on every plan.

The lower bound is valid for the true MILP objective.  The reported
bound is the *exact* Lagrangian dual of the load-linking constraints
``sum_g s_g x_gj = q_j`` with ``q_j in [0, O_j]`` kept site-side: the
group term is the same vectorized pricing argmin, and the site term
``min_q (S_j(q) - sigma_j q)`` is minimized exactly over the segment
endpoints of the all-units space schedule (piecewise-linear, so the
minimum sits on an endpoint), fixed facility cost included.  The only
remaining slack is genuine duality gap plus the dropped non-negative
peer-split costs and the relaxed risk/ω rows.  (The master LP itself
prices space at the cheapest-tier linear rate, which also
under-estimates — both bound sources are valid and the engine reports
the larger.)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..lp.master import RestrictedMasterLP
from ..parallel import parallel_map
from ..telemetry import SolveStats, emit_progress
from .entities import AsIsState, DataCenter
from .formulation import ModelOptions, placement_cost
from .plan import TransformationPlan, evaluate_plan
from .validation import validate_plan
from .wan import inter_site_wan_price, undirected_peer_traffic


class DecompositionError(RuntimeError):
    """The decomposition engine could not produce a usable plan."""


@dataclass
class DecompositionConfig:
    """Engine knobs, all with scale-tested defaults.

    ``jobs`` is the process fan-out for both the cost-matrix build and
    the per-round pricing; ``<= 1`` keeps everything in-process (the
    pricing oracle is vectorized, so serial is already fast for small
    estates).  ``smoothing`` is the Wentges weight toward the current
    master duals (1.0 disables stabilization).  ``coordination`` picks
    the dual coordinator: ``"master"`` (restricted master LP),
    ``"subgradient"``, or ``"auto"`` (master up to
    ``master_group_limit`` groups).
    """

    max_rounds: int = 80
    jobs: int = 1
    smoothing: float = 0.7
    tolerance: float = 1e-6
    gap_target: float = 0.01
    time_limit: float | None = None
    coordination: str = "auto"
    master_group_limit: int = 1500
    master_iterations: int = 200000
    subgradient_rounds: int = 200

    def __post_init__(self) -> None:
        if self.coordination not in ("auto", "master", "subgradient"):
            raise ValueError(
                f"unknown coordination {self.coordination!r} "
                "(expected auto|master|subgradient)"
            )
        if not (0.0 < self.smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1]")


@dataclass
class GroupBlocks:
    """The block-decomposed view of an as-is state."""

    group_names: list[str]
    servers: np.ndarray          # (G,) int
    target_names: list[str]
    capacities: np.ndarray       # (J,) float
    #: Placement cost per (group, target); ``inf`` marks ineligible pairs.
    cost: np.ndarray             # (G, J) float
    #: Underestimating per-server space(+amortized fixed) rate per site.
    space_rate: np.ndarray       # (J,) float
    #: Per site: candidate ``(loads, exact space+fixed costs)`` arrays —
    #: the segment endpoints of the all-units schedule plus the unused
    #: point ``(0, 0)``.  Because the exact cost is linear on every
    #: segment, minimizing over these points solves the site-side
    #: Lagrangian subproblem exactly.
    space_points: list[tuple[np.ndarray, np.ndarray]] = field(
        default_factory=list
    )

    @property
    def n_groups(self) -> int:
        return len(self.group_names)

    @property
    def n_targets(self) -> int:
        return len(self.target_names)


@dataclass
class DecompositionOutcome:
    """A rounded plan plus the bound bookkeeping behind its gap report."""

    plan: TransformationPlan
    lower_bound: float
    upper_bound: float
    gap: float
    rounds: int
    columns: int
    coordination: str
    stats: SolveStats = field(default_factory=SolveStats)


# -- group-block extraction (parallel cost-matrix build) -------------------


def _space_rate(dc: DataCenter, options: ModelOptions) -> float:
    """Valid per-server underestimate of space + fixed cost at ``dc``.

    All-units tier prices are non-increasing, so the cheapest tier
    under-estimates the exact schedule; without economies of scale the
    model itself charges the (exact) base price.  The fixed facility
    cost amortizes as ``fixed/capacity`` per server — the exact LP
    relaxation of ``load <= capacity * used``.
    """
    schedule = dc.space_cost.truncated(dc.capacity)
    if options.economies_of_scale:
        rate = min(seg.unit_price for seg in schedule.segments)
    else:
        rate = schedule.segments[0].unit_price
    if dc.fixed_monthly_cost > 0 and dc.capacity > 0:
        rate += dc.fixed_monthly_cost / dc.capacity
    return rate


def _site_points(
    dc: DataCenter, options: ModelOptions
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate ``(load, exact space+fixed cost)`` points for one site.

    All-units pricing makes the exact cost linear in the load on every
    tier segment (``unit_price * q``, plus the fixed facility charge
    whenever the site is used), so ``min_q (S(q) - sigma q)`` over the
    whole ``[0, capacity]`` range is attained at one of these points.
    """
    cap = int(dc.capacity)
    loads = [0.0]
    costs = [0.0]
    schedule = dc.space_cost.truncated(cap) if cap >= 1 else None
    if schedule is not None:
        fixed = float(dc.fixed_monthly_cost)
        if options.economies_of_scale:
            segments = schedule.segments
        else:
            segments = (schedule.segments[0],)
        for seg in segments:
            upper = cap if seg.upper is None else min(int(seg.upper), cap)
            price = seg.unit_price
            if not options.economies_of_scale:
                upper = cap
            for q in (max(int(seg.lower), 1), upper):
                loads.append(float(q))
                costs.append(price * q + fixed)
    return np.array(loads), np.array(costs)


def _cost_rows(payload) -> np.ndarray:
    """Worker: placement-cost rows for one chunk of groups (picklable)."""
    state, group_indices, wan_model, space_rate = payload
    targets = state.target_datacenters
    rows = np.full((len(group_indices), len(targets)), np.inf)
    for r, gi in enumerate(group_indices):
        group = state.app_groups[gi]
        for j, dc in enumerate(targets):
            if not state.placeable(group, dc):
                continue
            rows[r, j] = (
                placement_cost(state, group, dc, wan_model=wan_model)
                + space_rate[j] * group.servers
            )
    return rows


def extract_group_blocks(
    state: AsIsState,
    options: ModelOptions | None = None,
    jobs: int = 1,
) -> GroupBlocks:
    """Price every (group, target) block, fanning chunks across workers."""
    options = options or ModelOptions()
    targets = state.target_datacenters
    space_rate = np.array([_space_rate(dc, options) for dc in targets])
    n_groups = len(state.app_groups)

    n_chunks = min(max(1, jobs) * 4, n_groups) if jobs > 1 else 1
    chunks = np.array_split(np.arange(n_groups), n_chunks)
    payloads = [
        (state, chunk.tolist(), options.wan_model, space_rate)
        for chunk in chunks
        if len(chunk)
    ]
    rows = parallel_map(_cost_rows, payloads, jobs=jobs)
    cost = np.vstack(rows) if rows else np.zeros((0, len(targets)))

    infeasible = np.isinf(cost).all(axis=1)
    if infeasible.any():
        bad = state.app_groups[int(np.argmax(infeasible))]
        raise DecompositionError(
            f"application group {bad.name!r} ({bad.servers} servers) fits no "
            "target data center; split it first or relax its placement "
            "constraints"
        )
    return GroupBlocks(
        group_names=[g.name for g in state.app_groups],
        servers=np.array([g.servers for g in state.app_groups], dtype=np.int64),
        target_names=[dc.name for dc in targets],
        capacities=np.array([float(dc.capacity) for dc in targets]),
        cost=cost,
        space_rate=space_rate,
        space_points=[_site_points(dc, options) for dc in targets],
    )


# -- pricing oracle (parallel per-group subproblems) -----------------------


def _price_chunk(payload) -> tuple[np.ndarray, np.ndarray]:
    """Worker: best site + value per group under the duals (picklable).

    The per-group subproblem is ``min_j c_gj - pi_j * s_g`` — the
    vectorized argmin over the chunk's cost rows; ``inf`` entries keep
    ineligible pairs out.
    """
    cost, servers, pi = payload
    adjusted = cost - np.outer(servers, pi)
    best_j = np.argmin(adjusted, axis=1)
    best_val = adjusted[np.arange(adjusted.shape[0]), best_j]
    return best_j, best_val


def _site_terms(
    blocks: GroupBlocks, pi: np.ndarray
) -> tuple[float, np.ndarray]:
    """Exact site-side Lagrangian terms and their argmin loads.

    With the load links ``sum_g s_g x_gj = q_j`` dualized at
    ``sigma_j = space_rate_j - pi_j`` (the linear space rate folded
    into ``cost`` moves back site-side), each site contributes
    ``min_q (S_j(q) - sigma_j q)`` over ``q in [0, capacity_j]`` —
    computed exactly over the precomputed segment-endpoint candidates.
    """
    sigma = blocks.space_rate - pi
    total = 0.0
    qstar = np.zeros(blocks.n_targets)
    for j, (loads, costs) in enumerate(blocks.space_points):
        values = costs - sigma[j] * loads
        k = int(np.argmin(values))
        total += float(values[k])
        qstar[j] = loads[k]
    return total, qstar


def _price_all(
    blocks: GroupBlocks, pi: np.ndarray, jobs: int
) -> tuple[np.ndarray, np.ndarray, float, np.ndarray]:
    """Solve every group's pricing subproblem; also return L(pi).

    ``L(pi) = sum_g min_j (c_gj - pi_j s_g) + sum_j min_q (S_j(q) -
    sigma_j q)`` is the Lagrangian dual of the load-linking rows with
    the capacity interval kept site-side — a valid lower bound at *any*
    ``pi <= 0``, and pointwise at least as tight as the classic
    ``+ pi . capacities`` capacity-row dual (``S_j(q) >= space_rate_j
    * q`` on ``[0, capacity_j]``).  Also returns the site argmin loads
    ``qstar`` (the site-side piece of the subgradient).
    """
    n_groups = blocks.n_groups
    if jobs <= 1:
        best_j, best_val = _price_chunk((blocks.cost, blocks.servers, pi))
    else:
        n_chunks = min(jobs * 4, n_groups)
        splits = np.array_split(np.arange(n_groups), n_chunks)
        payloads = [
            (blocks.cost[idx], blocks.servers[idx], pi)
            for idx in splits
            if len(idx)
        ]
        results = parallel_map(_price_chunk, payloads, jobs=jobs)
        best_j = np.concatenate([r[0] for r in results])
        best_val = np.concatenate([r[1] for r in results])
    site_total, qstar = _site_terms(blocks, pi)
    bound = float(best_val.sum() + site_total)
    return best_j, best_val, bound, qstar


# -- exact model objective (the gap's upper-bound side) --------------------


def model_objective(
    state: AsIsState,
    placement: dict[str, str],
    options: ModelOptions | None = None,
) -> float:
    """Exact MILP objective of an integral placement (no DR terms).

    Matches what the monolithic model charges the same placement:
    per-placement costs, exact (step-priced) space, fixed facility
    costs of used sites, and peer-split WAN.
    """
    options = options or ModelOptions()
    targets = {dc.name: dc for dc in state.target_datacenters}
    loads: dict[str, int] = {}
    total = 0.0
    for group in state.app_groups:
        dc = targets[placement[group.name]]
        total += placement_cost(state, group, dc, wan_model=options.wan_model)
        loads[dc.name] = loads.get(dc.name, 0) + group.servers
    for name, load in loads.items():
        if load <= 0:
            continue
        dc = targets[name]
        schedule = dc.space_cost.truncated(dc.capacity)
        if options.economies_of_scale:
            total += schedule.total_cost(load)
        else:
            total += schedule.segments[0].unit_price * load
        total += dc.fixed_monthly_cost
    for pair, traffic in undirected_peer_traffic(state.app_groups).items():
        name_a, name_b = sorted(pair)
        site_a, site_b = placement[name_a], placement[name_b]
        if site_a != site_b:
            total += traffic * inter_site_wan_price(targets[site_a], targets[site_b])
    return total


# -- primal rounding (greedy heuristic over the master support) ------------


class _Rounder:
    """Greedy integral rounding that honors capacity, risk and ω."""

    def __init__(self, state: AsIsState, blocks: GroupBlocks) -> None:
        self.state = state
        self.blocks = blocks
        self.remaining = blocks.capacities.copy()
        self.risk_used: dict[tuple[str, int], bool] = {}
        self.site_groups = np.zeros(blocks.n_targets, dtype=np.int64)
        omega = state.params.business_impact
        self.group_cap = (
            omega * len(state.app_groups) if omega < 1.0 else math.inf
        )
        self.risk_tag = {g.name: g.risk_group for g in state.app_groups}

    def feasible(self, gi: int, j: int) -> bool:
        blocks = self.blocks
        if not np.isfinite(blocks.cost[gi, j]):
            return False
        if blocks.servers[gi] > self.remaining[j] + 1e-9:
            return False
        if self.site_groups[j] + 1 > self.group_cap + 1e-9:
            return False
        tag = self.risk_tag.get(blocks.group_names[gi])
        if tag and self.risk_used.get((tag, j)):
            return False
        return True

    def place(self, gi: int, j: int) -> None:
        self.remaining[j] -= self.blocks.servers[gi]
        self.site_groups[j] += 1
        tag = self.risk_tag.get(self.blocks.group_names[gi])
        if tag:
            self.risk_used[(tag, j)] = True

    def unplace(self, gi: int, j: int) -> None:
        self.remaining[j] += self.blocks.servers[gi]
        self.site_groups[j] -= 1
        tag = self.risk_tag.get(self.blocks.group_names[gi])
        if tag:
            self.risk_used[(tag, j)] = False


def _round_placement(
    state: AsIsState,
    blocks: GroupBlocks,
    support: list[list[tuple[int, float]]] | None,
    pi: np.ndarray,
) -> dict[str, str] | None:
    """Round the fractional master support to an integral placement.

    Groups go largest-first; each tries its master columns by weight,
    then every site by dual-adjusted cost.  Returns ``None`` when the
    greedy walk wedges (a repair pass at coarser scale is the caller's
    job — in practice the capacity headroom of real estates admits
    this ordering).
    """
    rounder = _Rounder(state, blocks)
    adjusted = blocks.cost - np.outer(blocks.servers, pi)
    order = np.argsort(-blocks.servers, kind="stable")
    placement: dict[str, str] = {}
    for gi in order:
        gi = int(gi)
        chosen = None
        if support is not None:
            for j, _weight in support[gi]:
                if rounder.feasible(gi, j):
                    chosen = j
                    break
        if chosen is None:
            for j in np.argsort(adjusted[gi], kind="stable"):
                j = int(j)
                if rounder.feasible(gi, j):
                    chosen = j
                    break
        if chosen is None:
            return None
        rounder.place(gi, chosen)
        placement[blocks.group_names[gi]] = blocks.target_names[chosen]
    return placement


def _improve_placement(
    state: AsIsState,
    blocks: GroupBlocks,
    placement: dict[str, str],
    options: ModelOptions,
) -> dict[str, str]:
    """One local pass: move any group whose exact marginal cost drops.

    Uses exact step-priced space deltas (the rounding itself priced
    space at the linear underestimate), so it cleans up exactly the
    placements the relaxation was blind to.
    """
    targets = {dc.name: dc for dc in state.target_datacenters}
    tindex = {name: j for j, name in enumerate(blocks.target_names)}
    loads: dict[str, int] = {name: 0 for name in blocks.target_names}
    for group in state.app_groups:
        loads[placement[group.name]] += group.servers

    def space_cost(dc: DataCenter, load: int) -> float:
        if load <= 0:
            return 0.0
        schedule = dc.space_cost.truncated(dc.capacity)
        if options.economies_of_scale:
            base = schedule.total_cost(load)
        else:
            base = schedule.segments[0].unit_price * load
        return base + dc.fixed_monthly_cost

    rounder = _Rounder(state, blocks)
    for gi, group in enumerate(state.app_groups):
        rounder.place(gi, tindex[placement[group.name]])

    for gi, group in enumerate(state.app_groups):
        here = placement[group.name]
        dc_here = targets[here]
        j_here = tindex[here]
        base_here = placement_cost(state, group, dc_here, wan_model=options.wan_model)
        rounder.unplace(gi, j_here)
        best_delta, best_j = 0.0, None
        for j, name in enumerate(blocks.target_names):
            if name == here or not rounder.feasible(gi, j):
                continue
            dc_there = targets[name]
            delta = (
                placement_cost(state, group, dc_there, wan_model=options.wan_model)
                - base_here
                + space_cost(dc_there, loads[name] + group.servers)
                - space_cost(dc_there, loads[name])
                - space_cost(dc_here, loads[here])
                + space_cost(dc_here, loads[here] - group.servers)
            )
            if delta < best_delta - 1e-9:
                best_delta, best_j = delta, j
        if best_j is None:
            rounder.place(gi, j_here)
        else:
            rounder.place(gi, best_j)
            name = blocks.target_names[best_j]
            loads[here] -= group.servers
            loads[name] += group.servers
            placement[group.name] = name
    return placement


# -- dual coordination loops ----------------------------------------------


def _run_master_loop(
    blocks: GroupBlocks, config: DecompositionConfig, deadline: float | None
) -> tuple[float, np.ndarray, list[list[tuple[int, float]]] | None, int, int, int]:
    """Column generation against the restricted master LP.

    Returns ``(lower_bound, best_pi, support, rounds, columns, lp_iters)``.
    """
    n_groups, n_targets = blocks.n_groups, blocks.n_targets
    finite = blocks.cost[np.isfinite(blocks.cost)]
    big = float(finite.max() if finite.size else 1.0) * 10.0 + 1e6
    master = RestrictedMasterLP(blocks.capacities, n_groups, artificial_cost=big)

    # Seed: each group's cheapest placement.
    cheapest = np.argmin(blocks.cost, axis=1)
    for g in range(n_groups):
        j = int(cheapest[g])
        master.add_column(g, j, blocks.cost[g, j], float(blocks.servers[g]))

    best_lb = -math.inf
    best_pi = np.zeros(n_targets)
    support: list[list[tuple[int, float]]] | None = None
    lp_iterations = 0
    rounds = 0
    for rounds in range(1, config.max_rounds + 1):
        solution = master.solve(max_iterations=config.master_iterations)
        if solution.status != "optimal":
            break
        lp_iterations += solution.iterations
        pi = np.minimum(solution.capacity_duals, 0.0)
        mu = solution.convexity_duals
        support = master.group_support(solution.weights)

        pi_sep = config.smoothing * pi + (1.0 - config.smoothing) * best_pi
        best_j, best_val, bound, _ = _price_all(blocks, pi_sep, config.jobs)
        if bound > best_lb:
            best_lb, best_pi = bound, pi_sep
        emit_progress(
            {
                "phase": "decomposition",
                "round": rounds,
                "master_objective": solution.objective,
                "lower_bound": best_lb,
                "columns": master.n_columns - n_groups,
            }
        )
        reduced = best_val - mu
        entering = np.nonzero(reduced < -config.tolerance)[0]
        added = 0
        for g in entering:
            g = int(g)
            j = int(best_j[g])
            if master.add_column(g, j, blocks.cost[g, j], float(blocks.servers[g])):
                added += 1
        if added == 0 and config.smoothing < 1.0:
            # Mis-pricing check at the exact master duals.
            best_j, best_val, bound, _ = _price_all(blocks, pi, config.jobs)
            if bound > best_lb:
                best_lb, best_pi = bound, pi
            reduced = best_val - mu
            for g in np.nonzero(reduced < -config.tolerance)[0]:
                g = int(g)
                j = int(best_j[g])
                if master.add_column(
                    g, j, blocks.cost[g, j], float(blocks.servers[g])
                ):
                    added += 1
        if added == 0:
            # Converged: the restricted master *is* the full LP master
            # (no column prices out), so its objective is the exact
            # Dantzig-Wolfe bound — provided no artificial remains.
            if solution.artificial_weight < 1e-7:
                best_lb = max(best_lb, solution.objective)
                best_pi = pi
            break
        if deadline is not None and time.monotonic() > deadline:
            break
    return best_lb, best_pi, support, rounds, master.n_columns - n_groups, lp_iterations


def _run_subgradient_loop(
    blocks: GroupBlocks,
    config: DecompositionConfig,
    deadline: float | None,
    upper_estimate: float,
    pi0: np.ndarray | None = None,
    lb0: float = -math.inf,
) -> tuple[float, np.ndarray, int]:
    """Projected subgradient ascent on the capacity duals (pi <= 0).

    The Polyak step uses the primal estimate from the greedy rounding;
    the step scale halves after stretches without bound improvement.
    ``pi0``/``lb0`` warm-start the ascent (the master path uses this to
    polish its bound past the linearized-space LP optimum).
    Returns ``(lower_bound, best_pi, rounds)``.
    """
    pi = np.zeros(blocks.n_targets) if pi0 is None else pi0.copy()
    best_lb = lb0
    best_pi = pi.copy()
    theta = 1.0
    stall = 0
    rounds = 0
    for rounds in range(1, config.subgradient_rounds + 1):
        best_j, _best_val, bound, qstar = _price_all(blocks, pi, config.jobs)
        if bound > best_lb + 1e-9:
            best_lb, best_pi = bound, pi.copy()
            stall = 0
        else:
            stall += 1
            if stall >= 5:
                theta = max(theta * 0.5, 1e-4)
                stall = 0
        # Subgradient of L at pi: the site argmin loads minus the load
        # the pricing solutions put on each site.
        load = np.bincount(
            best_j, weights=blocks.servers.astype(float), minlength=blocks.n_targets
        )
        grad = qstar - load
        norm = float(grad @ grad)
        if norm < 1e-12:
            break
        gap_estimate = max(upper_estimate - bound, 1e-6)
        pi = np.minimum(pi + theta * gap_estimate / norm * grad, 0.0)
        if deadline is not None and time.monotonic() > deadline:
            break
        if (
            math.isfinite(upper_estimate)
            and upper_estimate > 0
            and (upper_estimate - best_lb) / upper_estimate < config.gap_target / 4
        ):
            break
    return best_lb, best_pi, rounds


# -- entry point -----------------------------------------------------------


def solve_decomposition(
    state: AsIsState,
    options: ModelOptions | None = None,
    config: DecompositionConfig | None = None,
) -> DecompositionOutcome:
    """Plan ``state`` by decomposition; returns plan + certified gap.

    Raises :class:`DecompositionError` when the state needs features
    the engine does not cover (joint DR planning) or no integral
    rounding exists.
    """
    options = options or ModelOptions()
    config = config or DecompositionConfig()
    if options.enable_dr:
        raise DecompositionError(
            "method='decomposition' does not plan joint disaster recovery "
            "yet; use method='milp' for enable_dr states"
        )
    start = time.monotonic()
    deadline = start + config.time_limit if config.time_limit else None

    blocks = extract_group_blocks(state, options, jobs=config.jobs)

    coordination = config.coordination
    if coordination == "auto":
        coordination = (
            "master" if blocks.n_groups <= config.master_group_limit
            else "subgradient"
        )

    # A first greedy rounding (zero duals) gives the subgradient its
    # Polyak target and every path a feasible incumbent early.
    placement0 = _round_placement(state, blocks, None, np.zeros(blocks.n_targets))
    upper0 = (
        model_objective(state, placement0, options)
        if placement0 is not None
        else math.inf
    )

    columns = 0
    lp_iterations = 0
    support: list[list[tuple[int, float]]] | None = None
    if coordination == "master":
        lower, pi, support, rounds, columns, lp_iterations = _run_master_loop(
            blocks, config, deadline
        )
        # The master certifies the linearized-space LP bound; a short
        # subgradient polish on the exact Lagrangian (step-priced site
        # terms) from the master duals can only raise it.
        if math.isfinite(lower) and (
            deadline is None or time.monotonic() < deadline
        ):
            lower, pi, polish_rounds = _run_subgradient_loop(
                blocks, config, deadline, upper0, pi0=pi, lb0=lower
            )
            rounds += polish_rounds
    else:
        lower, pi, rounds = _run_subgradient_loop(blocks, config, deadline, upper0)

    rounded = _round_placement(state, blocks, support, pi)
    candidates: list[tuple[float, dict[str, str]]] = []
    if rounded is not None:
        candidates.append((model_objective(state, rounded, options), rounded))
        # The local pass is blind to peer-split costs, so keep the
        # pre-improvement rounding as a candidate too.
        improved = _improve_placement(state, blocks, dict(rounded), options)
        candidates.append((model_objective(state, improved, options), improved))
    if placement0 is not None:
        candidates.append((upper0, placement0))
    if not candidates:
        raise DecompositionError(
            "rounding found no capacity-feasible integral placement; "
            "the estate is too tight for the decomposition heuristic"
        )
    upper, placement = min(candidates, key=lambda pair: pair[0])

    gap = (upper - lower) / upper if upper > 0 and math.isfinite(lower) else math.nan
    elapsed = time.monotonic() - start

    plan = evaluate_plan(
        state,
        placement,
        secondary={},
        wan_model=options.wan_model,
        solver="decomposition",
        objective=upper,
    )
    stats = SolveStats(
        backend="decomposition",
        elapsed_seconds=elapsed,
        lp_iterations=lp_iterations,
        best_bound=lower,
        incumbent=upper,
        mip_gap=gap,
        extra={
            "decomp_rounds": float(rounds),
            "decomp_columns": float(columns),
            "decomp_groups": float(blocks.n_groups),
            "decomp_targets": float(blocks.n_targets),
            "decomp_jobs": float(config.jobs),
            "decomp_master": 1.0 if coordination == "master" else 0.0,
        },
    )
    plan.solver_stats = stats
    validate_plan(state, plan)
    return DecompositionOutcome(
        plan=plan,
        lower_bound=lower,
        upper_bound=upper,
        gap=gap,
        rounds=rounds,
        columns=columns,
        coordination=coordination,
        stats=stats,
    )
