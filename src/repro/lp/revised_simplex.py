"""Sparse bounded-variable revised simplex — the default builtin LP core.

This replaces the dense full-tableau two-phase simplex as the engine
behind ``engine="builtin"``.  The structural moves are the ones every
production LP code makes:

* **Implicit bounds.**  Variable bounds are never materialized as
  constraint rows.  Each variable carries a status — basic, nonbasic at
  lower bound, nonbasic at upper bound, or nonbasic free (at zero) —
  and the simplex works directly on ``lb <= x <= ub``.  A
  branch-and-bound node solve is therefore a pure bound-array update:
  no row rebuilding, ever.
* **Sparse data.**  The constraint matrix is stored once in CSC form
  (:class:`~repro.lp.sparse.CSCMatrix`); each row gets one slack to
  become an equality (``A x + s = b`` with the row sense encoded in the
  slack's bounds), so the basis is ``m_structural`` wide instead of the
  tableau engine's ``m + ~2n`` bound-row-inflated system.
* **Factorized basis + product-form updates.**  The basis inverse is
  computed by LAPACK's LU (``numpy.linalg.inv`` = getrf/getri) over the
  structural rows only and then extended pivot-by-pivot with
  product-form eta vectors; the eta file is folded back into a fresh
  factorization every :data:`REFACTOR_INTERVAL` pivots (and whenever a
  pivot looks numerically suspect).
* **Pricing.**  Dantzig pricing over cyclic partial-pricing blocks,
  with the same degeneracy watchdog as the tableau engine: when the
  step length stalls long enough, Bland's rule takes over until
  progress resumes.
* **Two-pass ratio test.**  Pass one computes the maximum step under a
  small bound-relaxation tolerance; pass two picks the largest pivot
  element among the blocking candidates, trading a bounded feasibility
  slip for numerical stability (Harris-style).

Warm starts carry ``(basis, nonbasic-status)`` across solves: a parent
branch-and-bound node's basis is refactorized against the child's
bounds, and the (usually tiny) set of basic variables pushed outside
their new bounds is repaired by the phase-1 infeasibility minimization
instead of a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sparse import CSCMatrix

#: Reduced-cost tolerance (dual feasibility).
DJ_TOL = 1e-9

#: Primal feasibility tolerance on variable bounds.
FEAS_TOL = 1e-9

#: Minimum pivot magnitude accepted without an early refactorization.
PIV_TOL = 1e-11

#: Eta-file length that triggers a refactorization.
REFACTOR_INTERVAL = 64

#: Phase-1 residual infeasibility below which the basis counts feasible
#: (matches the tableau engine's phase-1 threshold).
PHASE1_TOL = 1e-7

#: Nonbasic/basic variable statuses.
AT_LOWER, AT_UPPER, FREE, BASIC = 0, 1, 2, 3


@dataclass
class RevisedResult:
    """Raw revised-simplex outcome over structural variables."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit" | "error"
    x: np.ndarray | None
    objective: float
    iterations: int
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    bland_switches: int = 0
    degenerate_pivots: int = 0
    refactorizations: int = 0
    eta_file_length: int = 0
    pricing_passes: int = 0
    bound_flips: int = 0
    #: Basic variable index per row (structural cols first, then slacks).
    basis: np.ndarray | None = None
    #: Per-column status vector (AT_LOWER/AT_UPPER/FREE/BASIC).
    vstat: np.ndarray | None = None
    #: Row duals ``y = c_B B^{-1}`` at optimality (``a_ub`` rows first,
    #: then ``a_eq`` rows).  Sign convention of the min problem: a
    #: binding ``<=`` row carries ``y_i <= 0``, so the reduced cost of a
    #: structural column is ``c_j - y . a_j``.  ``None`` on non-optimal
    #: exits.
    duals: np.ndarray | None = None
    warm_started: bool = False
    message: str = ""


class SparseBoundedLP:
    """One LP *family*: fixed ``c``/rows, bounds supplied per solve.

    ``min c'x  s.t.  a_ub x <= b_ub, a_eq x = b_eq, lb <= x <= ub`` —
    rows become equalities through one slack each (``<=`` slack in
    ``[0, inf)``, ``=`` slack fixed at ``[0, 0]``), so only the bound
    arrays vary between branch-and-bound nodes.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray | CSCMatrix,
        b_ub: np.ndarray,
        a_eq: np.ndarray | CSCMatrix,
        b_eq: np.ndarray,
    ) -> None:
        self.c = np.asarray(c, dtype=float)
        self.n = self.c.shape[0]
        if not isinstance(a_ub, CSCMatrix):
            a_ub = CSCMatrix.from_dense(np.asarray(a_ub, dtype=float).reshape(-1, self.n))
        if not isinstance(a_eq, CSCMatrix):
            a_eq = CSCMatrix.from_dense(np.asarray(a_eq, dtype=float).reshape(-1, self.n))
        m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
        self.m = m_ub + m_eq
        self.b = np.concatenate([np.asarray(b_ub, float), np.asarray(b_eq, float)])
        self.slack_lb = np.zeros(self.m)
        self.slack_ub = np.concatenate([np.full(m_ub, np.inf), np.zeros(m_eq)])
        self.a = _vstack_csc(a_ub, a_eq, self.n)

    def append_le_rows(self, a_new: np.ndarray | CSCMatrix, b_new: np.ndarray) -> None:
        """Append ``<=`` rows in place, below every existing row.

        Appending at the *bottom* of the stack keeps every existing
        slack id (``n + row``) stable, so ``(basis, vstat)`` tokens from
        earlier solves of this family stay addressable — they merely
        need extending with the new rows' slacks (see
        :func:`extend_warm_pair`).  Only ``<=`` rows are supported:
        ``>=`` rows are negated into ``<=`` form by the standardizer
        upstream, and an ``=`` append would splice into the middle of
        the slack-bound stack, invalidating old tokens.
        """
        if not isinstance(a_new, CSCMatrix):
            a_new = CSCMatrix.from_dense(
                np.asarray(a_new, dtype=float).reshape(-1, self.n)
            )
        if a_new.shape[1] != self.n:
            raise ValueError("appended rows must span the family's columns")
        k = a_new.shape[0]
        b_new = np.asarray(b_new, dtype=float).reshape(k)
        self.b = np.concatenate([self.b, b_new])
        self.slack_lb = np.concatenate([self.slack_lb, np.zeros(k)])
        self.slack_ub = np.concatenate([self.slack_ub, np.full(k, np.inf)])
        self.a = _vstack_csc(self.a, a_new, self.n)
        self.m += k


def _vstack_csc(top: CSCMatrix, bottom: CSCMatrix, ncols: int) -> CSCMatrix:
    """Stack two CSC blocks row-wise (bottom rows offset by top height)."""
    if bottom.shape[0] == 0:
        return top
    if top.shape[0] == 0:
        return bottom
    m = top.shape[0] + bottom.shape[0]
    indptr = np.zeros(ncols + 1, dtype=np.int64)
    counts = np.diff(top.indptr) + np.diff(bottom.indptr)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    data = np.empty(indptr[-1], dtype=float)
    for j in range(ncols):
        t0, t1 = top.indptr[j], top.indptr[j + 1]
        b0, b1 = bottom.indptr[j], bottom.indptr[j + 1]
        o = indptr[j]
        k = t1 - t0
        indices[o : o + k] = top.indices[t0:t1]
        data[o : o + k] = top.data[t0:t1]
        indices[o + k : o + k + (b1 - b0)] = bottom.indices[b0:b1] + top.shape[0]
        data[o + k : o + k + (b1 - b0)] = bottom.data[b0:b1]
    return CSCMatrix(shape=(m, ncols), indptr=indptr, indices=indices, data=data)


def extend_warm_pair(
    lp: SparseBoundedLP,
    basis: np.ndarray,
    vstat: np.ndarray,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Extend a pre-append ``(basis, vstat)`` pair to ``lp``'s current rows.

    After :meth:`SparseBoundedLP.append_le_rows` an old token is one
    entry short per appended row.  The canonical extension makes each
    new row's slack basic in that row: the extended basis matrix is
    block lower-triangular ``[[B, 0], [C, I]]``, so it is nonsingular
    whenever the old basis was, and the old solution's duals extend
    with zeros — the extended point stays *dual* feasible and is primal
    infeasible only in rows the append actually violated (the dual
    simplex re-entry case).  Returns ``None`` when the pair cannot
    belong to an ancestor of this family.
    """
    basis = np.asarray(basis, dtype=np.int64)
    vstat = np.asarray(vstat, dtype=np.int8)
    m_old = basis.shape[0]
    k = lp.m - m_old
    if k < 0 or vstat.shape[0] != lp.n + m_old:
        return None
    if k == 0:
        return basis, vstat
    # Rows append at the bottom, so every old column id — structural and
    # slack alike — is unchanged; the new slacks simply take the next ids.
    new_slacks = np.arange(lp.n + m_old, lp.n + lp.m, dtype=np.int64)
    basis_ext = np.concatenate([basis, new_slacks])
    vstat_ext = np.concatenate([vstat, np.full(k, BASIC, dtype=np.int8)])
    return basis_ext, vstat_ext


def bordered_binv(
    lp: SparseBoundedLP,
    basis: np.ndarray,
    binv_old: np.ndarray,
    m_old: int,
) -> np.ndarray | None:
    """Bordered update of a basis inverse across a row append.

    ``basis`` is the *extended* basis (old basics followed by the new
    rows' slacks), ``binv_old`` the ``m_old × m_old`` inverse of the old
    basis.  With the extension block lower-triangular —
    ``B' = [[B, 0], [C, I]]`` where ``C`` holds the appended rows'
    coefficients at the old basic columns — the inverse is exactly
    ``[[B^-1, 0], [-C B^-1, I]]``: one ``k × m_old`` matmul instead of
    an O(m^3) refactorization.
    """
    m_new = basis.shape[0]
    k = m_new - m_old
    if k <= 0 or binv_old.shape != (m_old, m_old):
        return None
    C = np.zeros((k, m_old))
    for pos in range(m_old):
        j = int(basis[pos])
        if j >= lp.n:
            continue  # slack columns have no entries in appended rows
        idx, dat = lp.a.col(j)
        sel = idx >= m_old
        if sel.any():
            C[idx[sel] - m_old, pos] = dat[sel]
    binv = np.zeros((m_new, m_new))
    binv[:m_old, :m_old] = binv_old
    binv[m_old:, :m_old] = -C @ binv_old
    binv[m_old:, m_old:] = np.eye(k)
    return binv


class _Solver:
    """One bounded-variable revised-simplex solve."""

    def __init__(
        self,
        lp: SparseBoundedLP,
        lb: np.ndarray,
        ub: np.ndarray,
        max_iterations: int,
        warm: tuple[np.ndarray, np.ndarray] | None,
    ) -> None:
        self.lp = lp
        self.n, self.m = lp.n, lp.m
        self.N = self.n + self.m
        self.lower = np.concatenate([np.asarray(lb, float), lp.slack_lb])
        self.upper = np.concatenate([np.asarray(ub, float), lp.slack_ub])
        self.max_iterations = max_iterations
        self.warm = warm

        self.iterations = 0
        self.phase1_iterations = 0
        self.phase2_iterations = 0
        self.bland_switches = 0
        self.degenerate_pivots = 0
        self.refactorizations = 0
        self.eta_file_length = 0
        self.pricing_passes = 0
        self.bound_flips = 0
        self.warm_started = False

        self.bland = False
        self._price_ptr = 0
        self._block = max(64, -(-self.N // 8))  # ceil(N/8), at least 64

        self.basis = np.empty(self.m, dtype=np.int64)
        self.vstat = np.empty(self.N, dtype=np.int8)
        self.xval = np.zeros(self.N)
        self.xB = np.zeros(self.m)
        self.binv = np.eye(self.m)
        self.etas: list[tuple[int, np.ndarray]] = []
        self._cvec = np.concatenate([lp.c, np.zeros(self.m)])

    # -- basis factorization & FTRAN/BTRAN ---------------------------------

    def _refactor(self) -> bool:
        """Rebuild the basis inverse from scratch; retire the eta file."""
        n, m = self.n, self.m
        B = np.zeros((m, m))
        slack = self.basis >= n
        B[self.basis[slack] - n, np.nonzero(slack)[0]] = 1.0
        for k in np.nonzero(~slack)[0]:
            idx, dat = self.lp.a.col(int(self.basis[k]))
            B[idx, k] = dat
        try:
            binv = np.linalg.inv(B)
        except np.linalg.LinAlgError:
            return False
        if not np.isfinite(binv).all():
            return False
        self.binv = binv
        self.refactorizations += 1
        self.eta_file_length += len(self.etas)
        self.etas = []
        return True

    def _ftran(self, v: np.ndarray) -> np.ndarray:
        v = self.binv @ v
        for r, g in self.etas:
            piv = v[r]
            if piv != 0.0:
                v = v + g * piv
        return v

    def _ftran_col(self, j: int) -> np.ndarray:
        if j < self.n:
            idx, dat = self.lp.a.col(j)
            v = self.binv[:, idx] @ dat
        else:
            v = self.binv[:, j - self.n].copy()
        for r, g in self.etas:
            piv = v[r]
            if piv != 0.0:
                v = v + g * piv
        return v

    def _btran(self, u: np.ndarray) -> np.ndarray:
        u = u.copy()
        for r, g in reversed(self.etas):
            u[r] += float(u @ g)
        return u @ self.binv

    # -- starting bases ----------------------------------------------------

    def _normalize_nonbasic(self) -> None:
        """Clamp statuses to representable bounds, assign nonbasic values."""
        vst = self.vstat
        lowf = np.isfinite(self.lower)
        upf = np.isfinite(self.upper)
        nb = vst != BASIC
        bad_low = nb & (vst == AT_LOWER) & ~lowf
        vst[bad_low & upf] = AT_UPPER
        vst[bad_low & ~upf] = FREE
        bad_up = nb & (vst == AT_UPPER) & ~upf
        vst[bad_up & lowf] = AT_LOWER
        vst[bad_up & ~lowf] = FREE
        # FREE is reserved for genuinely free columns; pin bounded ones.
        stray = nb & (vst == FREE) & lowf
        vst[stray] = AT_LOWER
        stray = nb & (vst == FREE) & ~lowf & upf
        vst[stray] = AT_UPPER
        self.xval = np.where(
            vst == AT_LOWER, self.lower,
            np.where(vst == AT_UPPER, self.upper, 0.0),
        )

    def _compute_xb(self) -> None:
        xs = np.where(self.vstat[: self.n] != BASIC, self.xval[: self.n], 0.0)
        rhs = self.lp.b - self.lp.a.matvec(xs)
        sl = np.where(self.vstat[self.n :] != BASIC, self.xval[self.n :], 0.0)
        rhs -= sl
        self.xB = self._ftran(rhs)

    def _cold_start(self) -> None:
        self.basis = np.arange(self.n, self.N, dtype=np.int64)
        self.vstat[:] = AT_LOWER
        self.vstat[self.basis] = BASIC
        self.etas = []
        self.binv = np.eye(self.m)
        self._normalize_nonbasic()
        self._compute_xb()

    def _try_warm_start(self) -> bool:
        basis, vstat = self.warm
        basis = np.asarray(basis, dtype=np.int64)
        vstat = np.asarray(vstat, dtype=np.int8)
        if basis.shape != (self.m,) or vstat.shape != (self.N,):
            return False
        if (basis < 0).any() or (basis >= self.N).any():
            return False
        if np.unique(basis).size != self.m:
            return False
        self.basis = basis.copy()
        self.vstat = vstat.copy()
        self.vstat[self.basis] = BASIC
        self.etas = []
        if not self._refactor():
            return False
        self._normalize_nonbasic()
        self._compute_xb()
        return True

    # -- pricing -----------------------------------------------------------

    def _eligible(self, d: np.ndarray, lo: int, hi: int) -> np.ndarray:
        vst = self.vstat[lo:hi]
        return (
            ((vst == AT_LOWER) & (d < -DJ_TOL))
            | ((vst == AT_UPPER) & (d > DJ_TOL))
            | ((vst == FREE) & (np.abs(d) > DJ_TOL))
        )

    def _reduced_block(self, y: np.ndarray, cvec: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Reduced costs of columns ``lo:hi`` (structural and/or slack)."""
        d = np.empty(hi - lo)
        a = self.lp.a
        sn = min(hi, self.n)
        if lo < self.n:
            p0, p1 = a.indptr[lo], a.indptr[sn]
            seg = np.zeros(sn - lo)
            if p1 > p0:
                np.add.at(
                    seg,
                    a.nnz_cols[p0:p1] - lo,
                    a.data[p0:p1] * y[a.indices[p0:p1]],
                )
            d[: sn - lo] = cvec[lo:sn] - seg
        if hi > self.n:
            s0 = max(lo, self.n)
            d[s0 - lo :] = cvec[s0:hi] - y[s0 - self.n : hi - self.n]
        return d

    def _price(self, y: np.ndarray, cvec: np.ndarray) -> tuple[int, float] | None:
        """Entering column and its reduced cost, or None when priced out."""
        if self.bland:
            self.pricing_passes += 1
            d = self._reduced_block(y, cvec, 0, self.N)
            elig = np.nonzero(self._eligible(d, 0, self.N))[0]
            if elig.size == 0:
                return None
            q = int(elig[0])
            return q, float(d[q])
        nblocks = -(-self.N // self._block)
        for k in range(nblocks):
            blk = (self._price_ptr + k) % nblocks
            lo = blk * self._block
            hi = min(self.N, lo + self._block)
            self.pricing_passes += 1
            d = self._reduced_block(y, cvec, lo, hi)
            elig = np.nonzero(self._eligible(d, lo, hi))[0]
            if elig.size:
                self._price_ptr = blk
                best = elig[np.argmax(np.abs(d[elig]))]
                return int(lo + best), float(d[best])
        return None

    # -- ratio test --------------------------------------------------------

    def _ratio_test(self, alpha: np.ndarray, s: float, q: int, phase1: bool):
        """('flip', t) | ('pivot', t, row, hit_lower) | ('unbounded',)."""
        dvec = -s * alpha
        lB = self.lower[self.basis]
        uB = self.upper[self.basis]
        xB = self.xB
        m = self.m
        delta = 1e-9  # pass-1 bound relaxation

        t_str = np.full(m, np.inf)
        t_rel = np.full(m, np.inf)
        hit_lower = np.zeros(m, dtype=bool)
        dec = dvec < -PIV_TOL
        inc = dvec > PIV_TOL
        if phase1:
            below = xB < lB - FEAS_TOL
            above = xB > uB + FEAS_TOL
            feas = ~(below | above)
        else:
            feas = np.ones(m, dtype=bool)

        sel = feas & dec & np.isfinite(lB)
        t_str[sel] = (xB[sel] - lB[sel]) / -dvec[sel]
        t_rel[sel] = (xB[sel] - lB[sel] + delta) / -dvec[sel]
        hit_lower[sel] = True
        sel = feas & inc & np.isfinite(uB)
        t_str[sel] = (uB[sel] - xB[sel]) / dvec[sel]
        t_rel[sel] = (uB[sel] - xB[sel] + delta) / dvec[sel]
        if phase1:
            # Infeasible basics block at the bound they violate, which
            # they reach (and become feasible at) along this direction.
            sel = below & inc
            t_str[sel] = (lB[sel] - xB[sel]) / dvec[sel]
            t_rel[sel] = (lB[sel] - xB[sel] + delta) / dvec[sel]
            hit_lower[sel] = True
            sel = above & dec
            t_str[sel] = (uB[sel] - xB[sel]) / dvec[sel]
            t_rel[sel] = (uB[sel] - xB[sel] - delta) / dvec[sel]
        np.maximum(t_str, 0.0, out=t_str)
        np.maximum(t_rel, 0.0, out=t_rel)

        t_bound = self.upper[q] - self.lower[q]  # inf for half-open/free
        if not np.isfinite(t_str).any():
            if np.isfinite(t_bound):
                return ("flip", float(t_bound))
            return ("unbounded",)

        tmax = float(t_rel.min())
        cand = np.nonzero(t_str <= tmax)[0]
        if cand.size == 0:
            cand = np.array([int(np.argmin(t_str))])
        if self.bland:
            # Bland's anti-cycling guarantee is about variable indices:
            # among the minimum-ratio rows, the lowest basic index leaves.
            tmin = float(t_str[cand].min())
            tied = cand[t_str[cand] <= tmin + 1e-12]
            r = int(tied[np.argmin(self.basis[tied])])
        else:
            r = int(cand[np.argmax(np.abs(alpha[cand]))])
        theta = float(t_str[r])
        if np.isfinite(t_bound) and t_bound <= theta:
            return ("flip", float(t_bound))
        return ("pivot", theta, r, bool(hit_lower[r]))

    # -- pivots ------------------------------------------------------------

    def _apply_flip(self, q: int, s: float, alpha: np.ndarray, t: float) -> None:
        self.xB += t * (-s * alpha)
        if self.vstat[q] == AT_LOWER:
            self.vstat[q] = AT_UPPER
            self.xval[q] = self.upper[q]
        else:
            self.vstat[q] = AT_LOWER
            self.xval[q] = self.lower[q]
        self.bound_flips += 1

    def _apply_pivot(
        self, q: int, s: float, alpha: np.ndarray, theta: float, r: int, hit_lower: bool
    ) -> bool:
        """Replace ``basis[r]`` with ``q``; False on a numerically bad pivot."""
        ar = float(alpha[r])
        if abs(ar) < PIV_TOL:
            return False
        p = int(self.basis[r])
        self.xB += theta * (-s * alpha)
        entering_val = (0.0 if self.vstat[q] == FREE else self.xval[q]) + s * theta
        self.xB[r] = entering_val
        self.vstat[p] = AT_LOWER if hit_lower else AT_UPPER
        self.xval[p] = self.lower[p] if hit_lower else self.upper[p]
        self.vstat[q] = BASIC
        self.basis[r] = q
        g = -alpha / ar
        g[r] = 1.0 / ar - 1.0
        self.etas.append((r, g))
        if len(self.etas) >= REFACTOR_INTERVAL:
            if not self._refactor():
                return False
            self._compute_xb()
        return True

    # -- phases ------------------------------------------------------------

    def _infeasibility(self) -> tuple[np.ndarray, float]:
        """Phase-1 gradient on basic variables and the total violation."""
        lB = self.lower[self.basis]
        uB = self.upper[self.basis]
        below = np.maximum(lB - self.xB, 0.0)
        above = np.maximum(self.xB - uB, 0.0)
        grad = np.where(self.xB > uB + FEAS_TOL, 1.0, 0.0)
        grad -= np.where(self.xB < lB - FEAS_TOL, 1.0, 0.0)
        return grad, float(below.sum() + above.sum())

    def _run_phase(self, phase: int) -> str:
        stall = 0
        self.bland = False
        zero_c = np.zeros(self.N)
        while True:
            if phase == 1:
                grad, total = self._infeasibility()
                if total <= PHASE1_TOL:
                    return "feasible"
                y = self._btran(grad)
                cvec = zero_c
            else:
                y = self._btran(self._cvec[self.basis])
                cvec = self._cvec
            picked = self._price(y, cvec)
            if picked is None:
                return "infeasible" if phase == 1 else "optimal"
            if self.iterations >= self.max_iterations:
                return "iteration_limit"
            q, dq = picked
            if self.vstat[q] == AT_LOWER:
                s = 1.0
            elif self.vstat[q] == AT_UPPER:
                s = -1.0
            else:
                s = 1.0 if dq < 0 else -1.0
            alpha = self._ftran_col(q)
            outcome = self._ratio_test(alpha, s, q, phase == 1)
            if outcome[0] == "unbounded":
                if phase == 1:
                    # A finite-infeasibility objective cannot be unbounded;
                    # reaching here means numerical breakdown.
                    return "error"
                return "unbounded"
            if outcome[0] == "flip":
                theta = outcome[1]
                self._apply_flip(q, s, alpha, theta)
            else:
                _, theta, r, hit_lower = outcome
                if not self._apply_pivot(q, s, alpha, theta, r, hit_lower):
                    # Bad pivot: refresh the factorization and retry once
                    # from clean data; a second failure is terminal.
                    if not self._refactor():
                        return "error"
                    self._compute_xb()
                    alpha = self._ftran_col(q)
                    outcome = self._ratio_test(alpha, s, q, phase == 1)
                    if outcome[0] == "unbounded":
                        return "error" if phase == 1 else "unbounded"
                    if outcome[0] == "flip":
                        self._apply_flip(q, s, alpha, outcome[1])
                        theta = outcome[1]
                    else:
                        _, theta, r, hit_lower = outcome
                        if not self._apply_pivot(q, s, alpha, theta, r, hit_lower):
                            return "error"
            self.iterations += 1
            if phase == 1:
                self.phase1_iterations += 1
            else:
                self.phase2_iterations += 1
            # Degeneracy watchdog (same policy as the tableau engine):
            # a long run of zero-length steps flips pricing to Bland's
            # rule, which cannot cycle; any real step flips it back.
            if theta <= 1e-12:
                self.degenerate_pivots += 1
                stall += 1
                if stall > 2 * self.m and not self.bland:
                    self.bland = True
                    self.bland_switches += 1
            else:
                stall = 0
                self.bland = False

    # -- driver ------------------------------------------------------------

    def solve(self) -> RevisedResult:
        if (self.lower > self.upper + FEAS_TOL).any():
            return self._result("infeasible")
        if self.m == 0:
            return self._solve_no_rows()
        if self.warm is not None and self._try_warm_start():
            self.warm_started = True
        else:
            self._cold_start()

        for attempt in range(4):
            status = self._run_phase(1)
            if status == "feasible":
                status = self._run_phase(2)
            if status != "optimal":
                return self._result(status)
            # Accuracy gate: recompute x_B from a fresh factorization and
            # only accept the optimum if it is genuinely primal feasible.
            if self.etas:
                if not self._refactor():
                    return self._result("error")
                self._compute_xb()
            viol = np.maximum(
                self.lower[self.basis] - self.xB, self.xB - self.upper[self.basis]
            )
            if float(viol.max(initial=0.0)) <= 1e-6:
                return self._result("optimal")
        return self._result("error")

    def _solve_no_rows(self) -> RevisedResult:
        """Degenerate case: no constraints, each variable optimizes alone."""
        c = self.lp.c
        x = np.zeros(self.n)
        for j in range(self.n):
            if c[j] > DJ_TOL:
                if not np.isfinite(self.lower[j]):
                    return self._result("unbounded")
                x[j] = self.lower[j]
            elif c[j] < -DJ_TOL:
                if not np.isfinite(self.upper[j]):
                    return self._result("unbounded")
                x[j] = self.upper[j]
            else:
                x[j] = self.lower[j] if np.isfinite(self.lower[j]) else (
                    self.upper[j] if np.isfinite(self.upper[j]) else 0.0
                )
        self.vstat[:] = AT_LOWER
        self._normalize_nonbasic()
        self.xval[: self.n] = x
        return self._result("optimal", x=x)

    def _result(self, status: str, x: np.ndarray | None = None) -> RevisedResult:
        basis = vstat = duals = None
        objective = np.nan
        if status == "optimal":
            if x is None:
                self.xval[self.basis] = self.xB
                x = self.xval[: self.n].copy()
                np.clip(x, self.lower[: self.n], self.upper[: self.n], out=x)
            objective = float(self.lp.c @ x)
            basis = self.basis.copy()
            vstat = self.vstat.copy()
            # The drivers refactor before accepting an optimum, so the
            # eta file is empty here and the BTRAN is exact.
            duals = self._btran(self._cvec[self.basis]) if self.m else np.zeros(0)
        elif status == "unbounded":
            objective = -np.inf
        return RevisedResult(
            status=status,
            x=x,
            objective=objective,
            iterations=self.iterations,
            phase1_iterations=self.phase1_iterations,
            phase2_iterations=self.phase2_iterations,
            bland_switches=self.bland_switches,
            degenerate_pivots=self.degenerate_pivots,
            refactorizations=self.refactorizations,
            eta_file_length=self.eta_file_length,
            pricing_passes=self.pricing_passes,
            bound_flips=self.bound_flips,
            basis=basis,
            vstat=vstat,
            duals=duals,
            warm_started=self.warm_started,
        )


def solve_bounded_lp(
    lp: SparseBoundedLP,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: int = 20000,
    warm: tuple[np.ndarray, np.ndarray] | None = None,
) -> RevisedResult:
    """Solve one member of the LP family for the given bound arrays.

    ``warm`` is a ``(basis, vstat)`` pair from a previous solve of the
    same family (typically the parent branch-and-bound node); a stale or
    singular pair silently falls back to a cold start.
    """
    return _Solver(lp, lb, ub, max_iterations, warm).solve()
