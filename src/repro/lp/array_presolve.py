"""Array-level presolve over the CSC constraint blocks.

:mod:`repro.lp.presolve` reduces *models* (``Problem`` objects) by
rewriting expressions; that is the right layer for the public
``solve_with_presolve`` entry point but far too slow to sit in front of
every relaxation build.  This module is the matrix-space counterpart: it
works directly on the ``(a_ub, b_ub, a_eq, b_eq, lb, ub)`` arrays that
:class:`~repro.lp.matrix_lp.RelaxationContext` and
:func:`~repro.lp.matrix_lp.solve_lp_arrays` already carry, using the
:class:`~repro.lp.sparse.CSCMatrix` entry arrays so each round is a
handful of vectorized scatters — O(nnz), no Python per-row loops.

Reductions (classic and exact):

* **empty rows** are feasibility-checked and dropped;
* **singleton rows** become bound updates and are dropped;
* **redundant inequality rows** (max activity ≤ rhs from the bounds
  alone) are dropped;
* **activity-based bound tightening** propagates each row's residual
  min/max activity onto every support column;
* **integer bound snapping** pulls fractional bounds of integral
  columns onto the integer hull;
* optional **empty-column fixing** moves cost-only columns to their
  attractive bound (one-shot solves only — never under branch and
  bound, where a later branch could tighten the column again).

Branch-and-bound validity: every reduction above is derived from the
*root* bounds, so it stays valid for any node whose box is contained in
the root box.  Callers re-solving with per-node bounds must intersect
them with the tightened root bounds (``result.lb``/``result.ub``) —
dropped singleton rows survive only through those bounds — and must
rebuild the presolve if bounds are ever *loosened* past the root box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .sparse import CSCMatrix

#: Infeasibility declarations need this much slack (conservative, above
#: the simplex/HiGHS feasibility tolerances, so presolve never calls
#: "infeasible" on a point a backend would accept).
_FEAS_TOL = 1e-7
#: Minimum improvement before a tightened bound is recorded.
_IMPROVE_TOL = 1e-9
#: Integrality recognition tolerance (matches the branch-and-bound one).
_INT_TOL = 1e-6


@dataclass
class ArrayPresolveResult:
    """Reductions found by :func:`presolve_arrays`.

    ``keep_ub``/``keep_eq`` are row masks over the original blocks;
    ``lb``/``ub`` are the tightened root bounds.  Counters mirror the
    model-level :class:`~repro.lp.presolve.PresolveStats` so telemetry
    can merge either source.
    """

    keep_ub: np.ndarray
    keep_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    rows_dropped: int = 0
    singleton_rows: int = 0
    bounds_tightened: int = 0
    cols_fixed: int = 0
    rounds: int = 0
    infeasible: bool = False
    message: str = ""

    @property
    def reduced(self) -> bool:
        return bool(self.rows_dropped or self.bounds_tightened or self.cols_fixed)


@dataclass
class _Block:
    """Live-row bookkeeping for one constraint block."""

    rows: np.ndarray  # entry -> row id
    cols: np.ndarray  # entry -> column id
    data: np.ndarray  # entry -> coefficient (never zero)
    rhs: np.ndarray
    keep: np.ndarray  # live-row mask
    is_eq: bool
    m: int = field(init=False)

    def __post_init__(self) -> None:
        self.m = self.rhs.shape[0]


def _entry_arrays(a) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, int]]:
    """(rows, cols, data, shape) of a dense array or CSCMatrix."""
    if isinstance(a, CSCMatrix):
        return a.indices, a.nnz_cols, a.data, a.shape
    csc = CSCMatrix.from_dense(np.atleast_2d(np.asarray(a, dtype=float)))
    return csc.indices, csc.nnz_cols, csc.data, csc.shape


def _activity(block: _Block, lb: np.ndarray, ub: np.ndarray):
    """Min/max row activities split into finite sums and ±inf counts."""
    ent = block.keep[block.rows]
    r = block.rows[ent]
    j = block.cols[ent]
    a = block.data[ent]
    lo_c = np.where(a > 0, a * lb[j], a * ub[j])
    hi_c = np.where(a > 0, a * ub[j], a * lb[j])
    lo_inf = ~np.isfinite(lo_c)
    hi_inf = ~np.isfinite(hi_c)
    lo_fin = np.where(lo_inf, 0.0, lo_c)
    hi_fin = np.where(hi_inf, 0.0, hi_c)
    m = block.m
    lo_sum = np.zeros(m)
    hi_sum = np.zeros(m)
    lo_cnt = np.zeros(m, dtype=np.int64)
    hi_cnt = np.zeros(m, dtype=np.int64)
    nnz = np.zeros(m, dtype=np.int64)
    if r.size:
        np.add.at(lo_sum, r, lo_fin)
        np.add.at(hi_sum, r, hi_fin)
        np.add.at(lo_cnt, r, lo_inf)
        np.add.at(hi_cnt, r, hi_inf)
        np.add.at(nnz, r, 1)
    return (r, j, a, lo_fin, hi_fin, lo_inf, hi_inf), (
        lo_sum,
        hi_sum,
        lo_cnt,
        hi_cnt,
        nnz,
    )


class _Infeasible(Exception):
    pass


def _apply_candidates(
    cand_lb: np.ndarray,
    cand_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> int:
    """Fold candidate bounds into (lb, ub); returns tightenings applied."""
    tightened = 0
    up = cand_lb > lb + _IMPROVE_TOL
    if up.any():
        lb[up] = cand_lb[up]
        tightened += int(up.sum())
    down = cand_ub < ub - _IMPROVE_TOL
    if down.any():
        ub[down] = cand_ub[down]
        tightened += int(down.sum())
    return tightened


def _process_block(
    block: _Block,
    lb: np.ndarray,
    ub: np.ndarray,
    result: ArrayPresolveResult,
) -> bool:
    """One reduction pass over a block; returns True if anything changed."""
    changed = False
    n = lb.shape[0]
    (r, j, a, lo_fin, hi_fin, lo_inf, hi_inf), (
        lo_sum,
        hi_sum,
        lo_cnt,
        hi_cnt,
        nnz,
    ) = _activity(block, lb, ub)
    b = block.rhs
    live = block.keep

    # Infeasibility from activities alone.
    bad = live & (lo_cnt == 0) & (lo_sum > b + _FEAS_TOL)
    if block.is_eq:
        bad |= live & (hi_cnt == 0) & (hi_sum < b - _FEAS_TOL)
    if bad.any():
        raise _Infeasible(
            f"row {int(np.flatnonzero(bad)[0])} unsatisfiable from bounds"
        )

    # Empty rows: feasibility already established above for <=; for ==
    # both directions were checked, so surviving empties just drop.
    empty = live & (nnz == 0)
    if empty.any():
        block.keep[empty] = False
        result.rows_dropped += int(empty.sum())
        changed = True

    # Singleton rows -> bound updates, then drop.
    single = live & (nnz == 1)
    if single.any():
        sel = single[r]
        rs, js, av = r[sel], j[sel], a[sel]
        rhs = b[rs]
        val = rhs / av
        if block.is_eq:
            if ((val < lb[js] - _FEAS_TOL) | (val > ub[js] + _FEAS_TOL)).any():
                raise _Infeasible("singleton equality outside column bounds")
            cand_lb = np.full(n, -np.inf)
            cand_ub = np.full(n, np.inf)
            np.maximum.at(cand_lb, js, val)
            np.minimum.at(cand_ub, js, val)
            # Two equalities fixing one column differently cross here and
            # are caught by the caller's lb > ub check.
        else:
            cand_lb = np.full(n, -np.inf)
            cand_ub = np.full(n, np.inf)
            pos = av > 0
            if pos.any():
                np.minimum.at(cand_ub, js[pos], val[pos])
            if (~pos).any():
                np.maximum.at(cand_lb, js[~pos], val[~pos])
        result.bounds_tightened += _apply_candidates(cand_lb, cand_ub, lb, ub)
        block.keep[single] = False
        dropped = int(single.sum())
        result.rows_dropped += dropped
        result.singleton_rows += dropped
        changed = True

    # Redundant inequality rows: max activity can never exceed the rhs.
    if not block.is_eq:
        redundant = block.keep & (nnz >= 2) & (hi_cnt == 0) & (hi_sum <= b + _IMPROVE_TOL)
        if redundant.any():
            block.keep[redundant] = False
            result.rows_dropped += int(redundant.sum())
            changed = True

    # Activity-based tightening on the remaining multi-column rows.
    ent_live = block.keep[r] & (nnz[r] >= 2)
    if ent_live.any():
        rs, js, av = r[ent_live], j[ent_live], a[ent_live]
        cand_lb = np.full(n, -np.inf)
        cand_ub = np.full(n, np.inf)
        # Residual minimum activity of the row, excluding this entry.
        rest_cnt = lo_cnt[rs] - lo_inf[ent_live]
        rest_sum = lo_sum[rs] - lo_fin[ent_live]
        usable = rest_cnt == 0
        if usable.any():
            quot = (b[rs[usable]] - rest_sum[usable]) / av[usable]
            pos = av[usable] > 0
            if pos.any():
                np.minimum.at(cand_ub, js[usable][pos], quot[pos])
            if (~pos).any():
                np.maximum.at(cand_lb, js[usable][~pos], quot[~pos])
        if block.is_eq:
            # Equalities also bound from the residual *maximum* activity.
            rest_cnt = hi_cnt[rs] - hi_inf[ent_live]
            rest_sum = hi_sum[rs] - hi_fin[ent_live]
            usable = rest_cnt == 0
            if usable.any():
                quot = (b[rs[usable]] - rest_sum[usable]) / av[usable]
                pos = av[usable] > 0
                if pos.any():
                    np.maximum.at(cand_lb, js[usable][pos], quot[pos])
                if (~pos).any():
                    np.minimum.at(cand_ub, js[usable][~pos], quot[~pos])
        applied = _apply_candidates(cand_lb, cand_ub, lb, ub)
        if applied:
            result.bounds_tightened += applied
            changed = True
    return changed


def _snap_integer_bounds(
    lb: np.ndarray,
    ub: np.ndarray,
    integral: np.ndarray,
    result: ArrayPresolveResult,
) -> bool:
    """Pull integral columns' fractional bounds onto the integer hull."""
    changed = False
    finite_lo = integral & np.isfinite(lb)
    if finite_lo.any():
        snapped = np.ceil(lb[finite_lo] - _INT_TOL)
        moved = snapped > lb[finite_lo] + _IMPROVE_TOL
        if moved.any():
            idx = np.flatnonzero(finite_lo)[moved]
            lb[idx] = snapped[moved]
            result.bounds_tightened += int(moved.sum())
            changed = True
    finite_hi = integral & np.isfinite(ub)
    if finite_hi.any():
        snapped = np.floor(ub[finite_hi] + _INT_TOL)
        moved = snapped < ub[finite_hi] - _IMPROVE_TOL
        if moved.any():
            idx = np.flatnonzero(finite_hi)[moved]
            ub[idx] = snapped[moved]
            result.bounds_tightened += int(moved.sum())
            changed = True
    return changed


def _fix_empty_columns(
    c: np.ndarray,
    blocks: list[_Block],
    lb: np.ndarray,
    ub: np.ndarray,
    integral: np.ndarray | None,
    result: ArrayPresolveResult,
) -> None:
    """Fix columns that appear in no live row at their attractive bound.

    Only called on one-shot solves: under branch and bound a later node
    could tighten the column past the value chosen here.
    """
    n = lb.shape[0]
    col_cnt = np.zeros(n, dtype=np.int64)
    for block in blocks:
        ent = block.keep[block.rows]
        if ent.any():
            np.add.at(col_cnt, block.cols[ent], 1)
    for jj in np.flatnonzero((col_cnt == 0) & (ub - lb > _IMPROVE_TOL)):
        cost = c[jj]
        if cost > _IMPROVE_TOL:
            target = lb[jj]
        elif cost < -_IMPROVE_TOL:
            target = ub[jj]
        else:
            target = lb[jj] if np.isfinite(lb[jj]) else ub[jj]
            if not np.isfinite(target):
                target = 0.0
        if not np.isfinite(target):
            continue  # cost pulls to an open end: let the solver prove unbounded
        if integral is not None and integral[jj]:
            if abs(target - round(target)) > _INT_TOL:
                continue
            target = float(round(target))
        lb[jj] = ub[jj] = target
        result.cols_fixed += 1


def presolve_arrays(
    c: np.ndarray,
    a_ub,
    b_ub: np.ndarray,
    a_eq,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    integrality: np.ndarray | None = None,
    fix_empty_columns: bool = False,
    max_rounds: int = 4,
) -> ArrayPresolveResult:
    """Reduce an array-form LP/MILP; exact, bound-box monotone.

    ``a_ub``/``a_eq`` may be dense arrays or :class:`CSCMatrix` views.
    Returns row keep-masks plus tightened bounds; the caller slices its
    own representation (dense or CSC) with the masks.
    """
    c = np.asarray(c, dtype=float)
    lb = np.array(lb, dtype=float, copy=True)
    ub = np.array(ub, dtype=float, copy=True)
    n = lb.shape[0]
    integral = None
    if integrality is not None:
        integral = np.asarray(integrality).astype(bool)

    blocks: list[_Block] = []
    for a, b, is_eq in ((a_ub, b_ub, False), (a_eq, b_eq, True)):
        rhs = np.asarray(b, dtype=float) if b is not None else np.zeros(0)
        if a is not None and rhs.size:
            rows, cols, data, _shape = _entry_arrays(a)
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            data = np.zeros(0)
        blocks.append(
            _Block(
                rows=rows,
                cols=cols,
                data=data,
                rhs=rhs,
                keep=np.ones(rhs.shape[0], dtype=bool),
                is_eq=is_eq,
            )
        )

    result = ArrayPresolveResult(
        keep_ub=blocks[0].keep, keep_eq=blocks[1].keep, lb=lb, ub=ub
    )

    def _crossing_check() -> None:
        crossed = lb > ub + _FEAS_TOL
        if crossed.any():
            raise _Infeasible(
                f"column {int(np.flatnonzero(crossed)[0])} has crossing "
                "presolved bounds"
            )
        # Sub-tolerance crossings are collapsed so downstream activity
        # math never sees lb > ub.
        tiny = lb > ub
        if tiny.any():
            mid = 0.5 * (lb[tiny] + ub[tiny])
            lb[tiny] = mid
            ub[tiny] = mid

    try:
        _crossing_check()
        if integral is not None:
            _snap_integer_bounds(lb, ub, integral, result)
            _crossing_check()
        for round_index in range(max_rounds):
            result.rounds = round_index + 1
            changed = False
            for block in blocks:
                changed |= _process_block(block, lb, ub, result)
            if integral is not None:
                changed |= _snap_integer_bounds(lb, ub, integral, result)
            _crossing_check()
            if not changed:
                break
        if fix_empty_columns:
            _fix_empty_columns(c, blocks, lb, ub, integral, result)
    except _Infeasible as exc:
        result.infeasible = True
        result.message = str(exc)
    return result
