"""From-scratch best-first branch-and-bound MILP solver.

Nodes carry only bound arrays; the shared constraint matrices live in the
root :class:`~repro.lp.standard_form.MatrixForm`.  The search:

* solves each node's LP relaxation (builtin simplex or HiGHS),
* prunes by bound against the incumbent,
* branches on the most fractional integral variable,
* explores best-bound-first so the gap shrinks monotonically.

Every solve returns a :class:`~repro.telemetry.SolveStats` on the
solution — nodes explored/pruned, LP iterations, cuts, the proven best
bound and the incumbent/bound gap trajectory — so experiments can
report search effort the way the MILP-consolidation literature does.

This solver is exact; it is intended for the small-to-medium instances
used in tests and parameter studies, with the HiGHS backend taking over
at case-study scale.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import GapPoint, SolveStats, emit_progress, metrics
from .matrix_lp import RelaxationContext, solve_lp_arrays
from .problem import Problem
from .solution import Solution, SolveStatus
from .standard_form import MatrixForm, to_matrix_form

#: Integrality tolerance: values this close to an integer are integral.
INT_TOL = 1e-6

#: Cap on recorded gap-trajectory points (bounds memory on big searches).
_MAX_TRAJECTORY_POINTS = 1000

#: Backwards-compatible alias — the old ad-hoc stats record is now the
#: shared telemetry schema.
BranchBoundStats = SolveStats


@dataclass(order=True)
class _Node:
    """Search node ordered by its relaxation bound (best-first).

    ``warm`` carries the parent relaxation's basis token so the child's
    simplex solve can skip phase 1 (builtin engine only).
    """

    bound: float
    tie: int = field(compare=True)
    lb: np.ndarray = field(compare=False, default=None)
    ub: np.ndarray = field(compare=False, default=None)
    depth: int = field(compare=False, default=0)
    warm: tuple | None = field(compare=False, default=None)
    # Pseudo-cost bookkeeping: which branching created this node, so its
    # relaxation can report the observed objective degradation per unit
    # of fractionality back to the variable that was branched on.
    pvar: int | None = field(compare=False, default=None)
    pdir: int = field(compare=False, default=0)
    pfrac: float = field(compare=False, default=0.0)
    pbase: float = field(compare=False, default=0.0)


def _absorb_lp_detail(stats: SolveStats, relax) -> None:
    """Fold one relaxation's iteration counters into the search stats."""
    stats.lp_iterations += relax.iterations
    stats.phase1_iterations += relax.phase1_iterations
    stats.phase2_iterations += relax.phase2_iterations
    stats.bland_switches += relax.bland_switches
    stats.degenerate_pivots += relax.degenerate_pivots
    stats.refactorizations += getattr(relax, "refactorizations", 0)
    stats.eta_file_length += getattr(relax, "eta_file_length", 0)
    stats.pricing_passes += getattr(relax, "pricing_passes", 0)
    stats.bound_flips += getattr(relax, "bound_flips", 0)
    stats.dual_pivots += getattr(relax, "dual_pivots", 0)
    stats.conversion_seconds += relax.conversion_seconds
    stats.relaxation_solve_seconds += relax.solve_seconds


def _apply_root_cuts(
    form,
    integral: np.ndarray,
    relaxation_engine: str,
    rounds: int,
    stats: SolveStats,
) -> None:
    """Strengthen the root relaxation with knapsack cover cuts in place."""
    from .cuts import cuts_to_rows, separate_cuts

    for _ in range(rounds):
        relax = solve_lp_arrays(
            form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
            form.lb, form.ub, engine=relaxation_engine,
        )
        _absorb_lp_detail(stats, relax)
        if relax.status != "optimal":
            return
        if _most_fractional(relax.x, integral) is None:
            return  # already integral: no point cutting
        # The bound arrays prove which support columns are genuinely
        # binary; cover cuts are invalid for general integers (ub > 1).
        cuts = separate_cuts(
            form.a_ub, form.b_ub, relax.x, integral, lb=form.lb, ub=form.ub
        )
        if not cuts:
            return
        extra_a, extra_b = cuts_to_rows(cuts, form.a_ub.shape[1])
        form.a_ub = np.vstack([form.a_ub, extra_a])
        form.b_ub = np.concatenate([form.b_ub, extra_b])
        stats.cut_rounds += 1
        stats.cuts_added += len(cuts)


def _most_fractional(x: np.ndarray, integral: np.ndarray) -> int | None:
    """Index of the integral variable farthest from an integer, or None."""
    frac = np.abs(x - np.round(x))
    frac[~integral] = 0.0
    idx = int(np.argmax(frac))
    if frac[idx] <= INT_TOL:
        return None
    return idx


def _choose_branch(
    x: np.ndarray,
    integral: np.ndarray,
    pseudo: dict[str, list[float]],
    names: list[str],
) -> int | None:
    """Pick the branching variable, or None when ``x`` is integral.

    With pseudo-cost history available the choice maximizes the product
    of the estimated down/up objective degradations (the classic product
    rule); variables with no history borrow the per-direction global
    mean.  Without any history this degrades to most-fractional.  The
    history dict rides :func:`solve_branch_and_bound`'s ``basis_io``
    channel, so successive incremental re-solves of the same model
    family inherit branching estimates from all previous trees — a
    warm-start for the *search strategy*, alongside the basis warm-start
    for the node LPs.
    """
    frac = np.abs(x - np.round(x))
    frac[~integral] = 0.0
    cand = np.flatnonzero(frac > INT_TOL)
    if cand.size == 0:
        return None
    if not pseudo:
        return int(cand[np.argmax(frac[cand])])
    dsum = dcnt = usum = ucnt = 0.0
    for entry in pseudo.values():
        dsum += entry[0]
        dcnt += entry[1]
        usum += entry[2]
        ucnt += entry[3]
    gdown = dsum / dcnt if dcnt else 1.0
    gup = usum / ucnt if ucnt else 1.0
    best = int(cand[0])
    best_score = -1.0
    for j in cand:
        f = float(x[j] - math.floor(x[j]))
        entry = pseudo.get(names[j])
        down = entry[0] / entry[1] if entry and entry[1] else gdown
        up = entry[2] / entry[3] if entry and entry[3] else gup
        score = max(down * f, 1e-9) * max(up * (1.0 - f), 1e-9)
        if score > best_score:
            best_score = score
            best = int(j)
    return best


def _reduced_cost_fixing(
    context, relax, node: _Node, integral: np.ndarray, cutoff: float
) -> int:
    """Fix root-nonbasic integer variables by reduced cost, in place.

    With an incumbent of value ``z*`` available *before* the search and
    the root relaxation solved to ``L`` with reduced costs ``d``, an
    integer variable nonbasic at a bound with ``L + |d_j| >= z* - gap``
    cannot take any other value in an improving solution — moving it one
    unit (the smallest integral step) already drives the bound past the
    pruning cutoff.  This is the per-column form of the bound-pruning
    rule, so it excludes exactly the points pruning would discard.  Only
    the incremental warm path has an incumbent this early (the seeded,
    possibly repaired, hint), which makes root fixing a warm-start-only
    tree reduction: a cold solve finds its first incumbent mid-search,
    after the root's children are already cast.
    """
    reduced = getattr(context, "reduced_costs", None)
    d = reduced(getattr(relax, "duals", None)) if reduced is not None else None
    if d is None:
        return 0
    slack = cutoff - relax.objective
    if not math.isfinite(slack) or slack < 0.0:
        return 0
    x = relax.x
    eff_lb = getattr(context, "_eff_lb", None)
    eff_ub = getattr(context, "_eff_ub", None)
    lb = node.lb if eff_lb is None else np.maximum(node.lb, eff_lb)
    ub = node.ub if eff_ub is None else np.minimum(node.ub, eff_ub)
    open_var = integral & (ub > lb + INT_TOL)
    threshold = max(slack, 1e-7)
    at_lb = open_var & (x <= lb + INT_TOL) & (d >= threshold)
    at_ub = open_var & (x >= ub - INT_TOL) & (-d >= threshold)
    if at_lb.any():
        fixed = np.round(lb[at_lb])
        node.lb[at_lb] = fixed
        node.ub[at_lb] = fixed
    if at_ub.any():
        fixed = np.round(ub[at_ub])
        node.lb[at_ub] = fixed
        node.ub[at_ub] = fixed
    return int(at_lb.sum() + at_ub.sum())


def _relative_gap(incumbent: float, bound: float) -> float:
    """Relative incumbent/bound gap in the internal minimize space."""
    if not math.isfinite(incumbent) or not math.isfinite(bound):
        return math.inf
    return max(0.0, incumbent - bound) / max(1.0, abs(incumbent))


def _warm_start_point(
    form: MatrixForm, warm_start, integral: np.ndarray, tol: float = 1e-6
) -> np.ndarray | None:
    """Validate a name→value hint as a feasible integral point, or None.

    The hint typically comes from the previous solve of a closely
    related model (an iterative-refinement step); it is only usable as
    an incumbent when it satisfies *this* model's bounds, integrality
    and constraints, so everything is checked vectorized before the
    search trusts it.
    """
    values = dict(warm_start)
    x = np.empty(len(form.variables))
    for i, var in enumerate(form.variables):
        value = values.get(var.name)
        if value is None:
            return None
        x[i] = float(value)
    x[integral.astype(bool)] = np.round(x[integral.astype(bool)])
    if (x < form.lb - tol).any() or (x > form.ub + tol).any():
        return None
    if form.a_ub.shape[0] and (form.a_ub @ x > form.b_ub + tol).any():
        return None
    if form.a_eq.shape[0] and (np.abs(form.a_eq @ x - form.b_eq) > tol).any():
        return None
    return np.clip(x, form.lb, form.ub)


def solve_branch_and_bound(
    problem: Problem,
    relaxation_engine: str = "highs",
    node_limit: int = 200000,
    time_limit: float | None = None,
    gap_tolerance: float = 1e-6,
    cover_cut_rounds: int = 0,
    max_iterations: int = 20000,
    node_resolve: str = "dual",
    presolve: bool = True,
    warm_start=None,
    form: MatrixForm | None = None,
    context: RelaxationContext | None = None,
    basis_io: dict | None = None,
) -> Solution:
    """Solve a MILP exactly by branch and bound.

    Parameters
    ----------
    problem:
        The model to solve (pure LPs are solved in one relaxation).
    relaxation_engine:
        ``"highs"`` (scipy) or ``"builtin"`` (our simplex) for node LPs.
    node_limit, time_limit:
        Safety limits; when hit the best incumbent is returned with
        status ``FEASIBLE`` (or ``ERROR`` when none was found) and the
        message reports the remaining incumbent/best-bound gap.
    gap_tolerance:
        Terminate when ``incumbent - best_bound`` falls below this.
    cover_cut_rounds:
        Cut-and-branch: up to this many rounds of knapsack cover cuts
        are separated at the root before branching (0 disables).  Cuts
        are valid for every integer point, so optimality is unaffected —
        only the search tree shrinks.
    max_iterations:
        Simplex pivot budget per node relaxation (builtin engine).
    node_resolve:
        ``"dual"`` (default) re-solves warm-started nodes with the dual
        simplex — a parent basis is dual feasible for its children, so
        most nodes cost a handful of pivots and infeasible ones stop at
        the first Farkas row.  ``"primal"`` restores the PR-5 behavior.
        Builtin engine only; ignored elsewhere.
    presolve:
        Run the array-level presolve (singleton/redundant row removal,
        activity bound tightening, integer snapping) once per tree on
        the root arrays; every node then solves the reduced problem.
        Applies to the builtin and HiGHS engines; the tableau engine
        stays presolve-free as the cross-check oracle.
    warm_start:
        Optional variable-name → value hint (a MIP start).  When it is
        feasible for *this* model it becomes the initial incumbent, so
        pruning bites from the first node; infeasible hints are rejected
        and counted, never trusted.
    form, context:
        A prebuilt :class:`MatrixForm` (carrying the *current* variable
        bounds) and a :class:`RelaxationContext` standardized for the
        same constraint matrices.  The incremental solve layer passes
        both so successive refinement re-solves skip conversion and
        standardization entirely.  ``context`` is ignored when cover
        cuts are requested (cuts grow the row set mid-solve).
    basis_io:
        Optional dict used as a warm-state channel between successive
        solves: ``basis_io.get("root")`` seeds the root relaxation's
        simplex basis, and on return ``basis_io["root"]`` holds this
        solve's root basis token (builtin engine only).
        ``basis_io["pseudo"]`` accumulates the pseudo-cost branching
        table across solves, so re-plans of the same model family keep
        their trained branching estimates.
    """
    if form is None:
        form = to_matrix_form(problem)
    integral = form.integrality.astype(bool)
    start = time.monotonic()
    stats = SolveStats(backend=f"branch_bound[{relaxation_engine}]")

    if cover_cut_rounds > 0 and integral.any():
        _apply_root_cuts(form, integral, relaxation_engine, cover_cut_rounds, stats)
        context = None  # cut rows are not in any prebuilt standardization

    # One standardization per tree: every node below reuses the cached
    # constraint blocks and passes only its (lb, ub) deltas.  An external
    # context (incremental re-solve) skips even that one-time cost.
    if context is None:
        context = RelaxationContext(
            form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
            form.lb, form.ub, engine=relaxation_engine,
            max_iterations=max_iterations,
            node_resolve=node_resolve, presolve=presolve,
            integrality=integral,
        )
    context_counters_start = (
        context.warm_start_hits, context.warm_start_misses,
        context.cache_hits, context.node_solves,
        getattr(context, "dual_entries", 0),
        getattr(context, "dual_fallbacks", 0),
        getattr(context, "extension_dual_entries", 0),
    )
    stats.merge_presolve(
        dropped_constraints=getattr(context, "presolve_rows_dropped", 0),
        tightened_bounds=getattr(context, "presolve_bounds_tightened", 0),
        rounds=getattr(context, "presolve_rounds", 0),
    )

    root_warm = basis_io.get("root") if basis_io else None
    # Pseudo-cost table {var_name: [down_sum, down_count, up_sum, up_count]}
    # of observed per-unit-fraction degradations.  Learned within this
    # tree; when a basis_io channel is present the table persists across
    # incremental re-solves, so warm re-plans start with trained
    # branching estimates instead of most-fractional guesses.
    pseudo: dict[str, list[float]] = (
        basis_io.setdefault("pseudo", {}) if basis_io is not None else {}
    )
    var_names = [var.name for var in form.variables]
    counter = itertools.count()
    root = _Node(bound=-math.inf, tie=next(counter), lb=form.lb.copy(),
                 ub=form.ub.copy(), warm=root_warm)
    heap: list[_Node] = [root]
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf
    if warm_start is not None:
        hint = _warm_start_point(form, warm_start, integral)
        if hint is not None:
            incumbent_x = hint
            incumbent_obj = float(form.c @ hint)
            stats.extra["warm_start_incumbent"] = 1.0
            stats.extra["warm_start_objective"] = form.objective_sign * (
                incumbent_obj + form.c0
            )
            metrics.increment("incremental.warm_start_seeded")
        else:
            stats.extra["warm_start_incumbent"] = 0.0
            metrics.increment("incremental.warm_start_rejected")
    # Proven lower bound on the (internal, minimized) optimum.  Best-first
    # search makes it monotone non-decreasing.
    best_bound = -math.inf

    def to_user_objective(internal: float) -> float:
        """Map an internal minimize-space value to the user's objective."""
        if not math.isfinite(internal):
            if math.isnan(internal):
                return internal
            return internal * form.objective_sign
        return form.objective_sign * (internal + form.c0)

    def record_gap_point() -> None:
        incumbent = (
            to_user_objective(incumbent_obj)
            if incumbent_x is not None
            else float("nan")
        )
        emit_progress(
            {
                "phase": "branch_bound",
                "nodes_explored": stats.nodes_explored,
                "best_bound": to_user_objective(best_bound),
                "incumbent": incumbent,
                "elapsed_seconds": time.monotonic() - start,
            }
        )
        if len(stats.gap_trajectory) >= _MAX_TRAJECTORY_POINTS:
            return
        stats.gap_trajectory.append(
            GapPoint(
                nodes_explored=stats.nodes_explored,
                best_bound=to_user_objective(best_bound),
                incumbent=incumbent,
                elapsed_seconds=time.monotonic() - start,
            )
        )

    def raise_bound(candidate: float) -> None:
        nonlocal best_bound
        # The proven bound can never exceed the incumbent (an upper bound
        # on the optimum); clamping keeps limit-exit gaps non-negative.
        candidate = min(candidate, incumbent_obj)
        if candidate > best_bound + 1e-12:
            best_bound = candidate
            record_gap_point()

    def limit_message(reason: str) -> str:
        if incumbent_x is None:
            return f"{reason} (no incumbent)"
        gap = _relative_gap(incumbent_obj, best_bound)
        if math.isinf(gap):
            return f"{reason} (gap unknown)"
        return f"{reason} (gap {gap * 100.0:.2f}%)"

    def make_solution(status: SolveStatus, x: np.ndarray | None, message: str) -> Solution:
        stats.elapsed_seconds = time.monotonic() - start
        stats.best_bound = to_user_objective(best_bound)
        # Deltas, not lifetime totals: an external context persists
        # across incremental re-solves and keeps accumulating.
        (hits0, misses0, cache0, solves0, dual0, dfall0,
         extdual0) = context_counters_start
        stats.warm_start_hits = context.warm_start_hits - hits0
        stats.warm_start_misses = context.warm_start_misses - misses0
        stats.dual_entries = getattr(context, "dual_entries", 0) - dual0
        stats.dual_fallbacks = getattr(context, "dual_fallbacks", 0) - dfall0
        stats.extension_dual_entries = (
            getattr(context, "extension_dual_entries", 0) - extdual0
        )
        stats.extra["relaxation_cache_hits"] = float(context.cache_hits - cache0)
        stats.extra["relaxation_node_solves"] = float(context.node_solves - solves0)
        values: dict = {}
        objective = float("nan")
        if x is not None:
            cleaned = x.copy()
            cleaned[integral] = np.round(cleaned[integral])
            values = {var: float(cleaned[i]) for i, var in enumerate(form.variables)}
            objective = form.objective_sign * (float(form.c @ cleaned) + form.c0)
            stats.incumbent = objective
        if incumbent_x is not None:
            stats.mip_gap = _relative_gap(incumbent_obj, best_bound)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solver=f"branch_bound[{relaxation_engine}]",
            iterations=stats.nodes_explored,
            message=message,
            stats=stats,
        )

    while heap:
        if stats.nodes_explored >= node_limit:
            status = SolveStatus.FEASIBLE if incumbent_x is not None else SolveStatus.ERROR
            return make_solution(status, incumbent_x, limit_message("node limit reached"))
        if time_limit is not None and time.monotonic() - start > time_limit:
            status = SolveStatus.FEASIBLE if incumbent_x is not None else SolveStatus.ERROR
            return make_solution(status, incumbent_x, limit_message("time limit reached"))

        node = heapq.heappop(heap)
        # Best-first: this node's bound is the weakest over all open nodes,
        # so it is the current proven lower bound on the optimum.
        raise_bound(node.bound)
        # Bound-based pruning against the current incumbent.
        if node.bound >= incumbent_obj - gap_tolerance:
            stats.nodes_pruned += 1
            continue

        relax = context.solve(node.lb, node.ub, warm=node.warm)
        stats.nodes_explored += 1
        _absorb_lp_detail(stats, relax)
        if node.depth == 0 and basis_io is not None:
            # Hand the root basis to the next incremental re-solve.
            basis_io["root"] = relax.warm_token

        if relax.status == "infeasible":
            continue
        if relax.status == "unbounded":
            if node.depth == 0:
                if not integral.any():
                    return make_solution(
                        SolveStatus.UNBOUNDED, None, "LP relaxation unbounded"
                    )
                # Root relaxation unbounded with integer variables: the
                # MILP is unbounded along a continuous ray (or empty, in
                # which case UNBOUNDED is still the conventional report).
                return make_solution(
                    SolveStatus.UNBOUNDED, None, "root relaxation unbounded"
                )
            # A non-root unbounded relaxation proves nothing about the
            # MILP: the node's integer region may be empty.  Report what
            # we actually know instead of asserting MILP unboundedness.
            if incumbent_x is not None:
                return make_solution(
                    SolveStatus.FEASIBLE,
                    incumbent_x,
                    f"unbounded ray at depth {node.depth}; "
                    "returning incumbent (optimality unproven)",
                )
            return make_solution(
                SolveStatus.ERROR,
                None,
                f"unbounded ray at depth {node.depth}, no incumbent "
                "(MILP unboundedness unproven)",
            )
        if relax.status != "optimal":
            status = SolveStatus.FEASIBLE if incumbent_x is not None else SolveStatus.ERROR
            detail = f" ({relax.message})" if relax.message else ""
            return make_solution(
                status, incumbent_x, f"relaxation failed: {relax.status}{detail}"
            )

        if node.pvar is not None:
            # Report the observed degradation to the variable branched on.
            entry = pseudo.setdefault(var_names[node.pvar], [0.0, 0.0, 0.0, 0.0])
            gain = max(0.0, relax.objective - node.pbase)
            per_unit = gain / max(node.pfrac, 1e-6)
            slot = 0 if node.pdir == 0 else 2
            entry[slot] += per_unit
            entry[slot + 1] += 1.0
            stats.extra["pseudo_cost_updates"] = (
                stats.extra.get("pseudo_cost_updates", 0.0) + 1.0
            )

        # The popped node's subtree bound tightens to its relaxation value;
        # combined with the best open node this may raise the global bound.
        open_bound = heap[0].bound if heap else math.inf
        raise_bound(min(relax.objective, open_bound))

        if relax.objective >= incumbent_obj - gap_tolerance:
            stats.nodes_pruned += 1
            continue

        if node.depth == 0 and incumbent_x is not None:
            # Root only, deliberately: fixing at every node is valid too,
            # but mutating deeper boxes reshuffles the most-fractional
            # branching order and measurably *grows* the hard trees.
            # Iterated at the root: each round of fixing shrinks the box,
            # so re-solving the tightened root raises its bound, widens
            # the reduced-cost slack, and exposes further fixable
            # columns.  The re-solve rides the dual simplex off the
            # previous root basis, so each extra round is near-free.
            cutoff = incumbent_obj - gap_tolerance
            total_fixed = 0
            proven = False
            for _ in range(8):
                fixed = _reduced_cost_fixing(
                    context, relax, node, integral, cutoff
                )
                total_fixed += fixed
                if not fixed:
                    break
                resolved = context.solve(node.lb, node.ub, warm=relax.warm_token)
                _absorb_lp_detail(stats, resolved)
                stats.extra["root_fixing_resolves"] = (
                    stats.extra.get("root_fixing_resolves", 0.0) + 1.0
                )
                if resolved.status == "infeasible" or (
                    resolved.status == "optimal"
                    and resolved.objective >= cutoff
                ):
                    # Fixing only ever excludes non-improving points, so
                    # an emptied (or cutoff-crossing) root proves the
                    # seeded incumbent optimal.
                    proven = True
                    break
                if resolved.status != "optimal":
                    break  # keep branching from the last good relaxation
                relax = resolved
            if total_fixed:
                stats.extra["reduced_cost_fixed"] = float(total_fixed)
                metrics.increment("incremental.reduced_cost_fixed", total_fixed)
            if proven:
                stats.nodes_pruned += 1
                continue

        branch_var = _choose_branch(relax.x, integral, pseudo, var_names)
        if branch_var is None:
            # Integral solution: new incumbent.
            if relax.objective < incumbent_obj - 1e-12:
                incumbent_obj = relax.objective
                incumbent_x = relax.x.copy()
                record_gap_point()
            continue

        value = relax.x[branch_var]
        floor_val = math.floor(value + INT_TOL)
        frac = float(value - math.floor(value))
        # Down branch: x <= floor(value)
        down_lb, down_ub = node.lb.copy(), node.ub.copy()
        down_ub[branch_var] = min(down_ub[branch_var], floor_val)
        heapq.heappush(
            heap,
            _Node(relax.objective, next(counter), down_lb, down_ub,
                  node.depth + 1, warm=relax.warm_token,
                  pvar=branch_var, pdir=0, pfrac=frac,
                  pbase=relax.objective),
        )
        # Up branch: x >= floor(value) + 1
        up_lb, up_ub = node.lb.copy(), node.ub.copy()
        up_lb[branch_var] = max(up_lb[branch_var], floor_val + 1)
        heapq.heappush(
            heap,
            _Node(relax.objective, next(counter), up_lb, up_ub,
                  node.depth + 1, warm=relax.warm_token,
                  pvar=branch_var, pdir=1, pfrac=1.0 - frac,
                  pbase=relax.objective),
        )

    if incumbent_x is None:
        return make_solution(SolveStatus.INFEASIBLE, None, "search exhausted, no incumbent")
    # Exhausted search proves optimality: the bound closes onto the incumbent.
    raise_bound(incumbent_obj)
    return make_solution(SolveStatus.OPTIMAL, incumbent_x, "search exhausted")
