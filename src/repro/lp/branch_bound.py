"""From-scratch best-first branch-and-bound MILP solver.

Nodes carry only bound arrays; the shared constraint matrices live in the
root :class:`~repro.lp.standard_form.MatrixForm`.  The search:

* solves each node's LP relaxation (builtin simplex or HiGHS),
* prunes by bound against the incumbent,
* branches on the most fractional integral variable,
* explores best-bound-first so the gap shrinks monotonically.

This solver is exact; it is intended for the small-to-medium instances
used in tests and parameter studies, with the HiGHS backend taking over
at case-study scale.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np

from .matrix_lp import solve_lp_arrays
from .problem import Problem
from .solution import Solution, SolveStatus
from .standard_form import to_matrix_form

#: Integrality tolerance: values this close to an integer are integral.
INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """Search node ordered by its relaxation bound (best-first)."""

    bound: float
    tie: int = field(compare=True)
    lb: np.ndarray = field(compare=False, default=None)
    ub: np.ndarray = field(compare=False, default=None)
    depth: int = field(compare=False, default=0)


@dataclass
class BranchBoundStats:
    """Search statistics for reporting and tests."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    lp_iterations: int = 0
    cuts_added: int = 0
    best_bound: float = float("-inf")
    elapsed_seconds: float = 0.0


def _apply_root_cuts(
    form,
    integral: np.ndarray,
    relaxation_engine: str,
    rounds: int,
    stats: "BranchBoundStats",
) -> None:
    """Strengthen the root relaxation with knapsack cover cuts in place."""
    from .cuts import cuts_to_rows, separate_cuts

    for _ in range(rounds):
        relax = solve_lp_arrays(
            form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
            form.lb, form.ub, engine=relaxation_engine,
        )
        stats.lp_iterations += relax.iterations
        if relax.status != "optimal":
            return
        if _most_fractional(relax.x, integral) is None:
            return  # already integral: no point cutting
        cuts = separate_cuts(form.a_ub, form.b_ub, relax.x, integral)
        if not cuts:
            return
        extra_a, extra_b = cuts_to_rows(cuts, form.a_ub.shape[1])
        form.a_ub = np.vstack([form.a_ub, extra_a])
        form.b_ub = np.concatenate([form.b_ub, extra_b])
        stats.cuts_added += len(cuts)


def _most_fractional(x: np.ndarray, integral: np.ndarray) -> int | None:
    """Index of the integral variable farthest from an integer, or None."""
    frac = np.abs(x - np.round(x))
    frac[~integral] = 0.0
    idx = int(np.argmax(frac))
    if frac[idx] <= INT_TOL:
        return None
    return idx


def solve_branch_and_bound(
    problem: Problem,
    relaxation_engine: str = "highs",
    node_limit: int = 200000,
    time_limit: float | None = None,
    gap_tolerance: float = 1e-6,
    cover_cut_rounds: int = 0,
) -> Solution:
    """Solve a MILP exactly by branch and bound.

    Parameters
    ----------
    problem:
        The model to solve (pure LPs are solved in one relaxation).
    relaxation_engine:
        ``"highs"`` (scipy) or ``"builtin"`` (our simplex) for node LPs.
    node_limit, time_limit:
        Safety limits; when hit the best incumbent is returned with
        status ``FEASIBLE`` (or ``ERROR`` when none was found).
    gap_tolerance:
        Terminate when ``incumbent - best_bound`` falls below this.
    cover_cut_rounds:
        Cut-and-branch: up to this many rounds of knapsack cover cuts
        are separated at the root before branching (0 disables).  Cuts
        are valid for every integer point, so optimality is unaffected —
        only the search tree shrinks.
    """
    form = to_matrix_form(problem)
    integral = form.integrality.astype(bool)
    start = time.monotonic()
    stats = BranchBoundStats()

    if cover_cut_rounds > 0 and integral.any():
        _apply_root_cuts(form, integral, relaxation_engine, cover_cut_rounds, stats)

    def make_solution(status: SolveStatus, x: np.ndarray | None, message: str) -> Solution:
        stats.elapsed_seconds = time.monotonic() - start
        values: dict = {}
        objective = float("nan")
        if x is not None:
            cleaned = x.copy()
            cleaned[integral] = np.round(cleaned[integral])
            values = {var: float(cleaned[i]) for i, var in enumerate(form.variables)}
            objective = form.objective_sign * (float(form.c @ cleaned) + form.c0)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solver=f"branch_bound[{relaxation_engine}]",
            iterations=stats.nodes_explored,
            message=message,
        )

    counter = itertools.count()
    root = _Node(bound=-math.inf, tie=next(counter), lb=form.lb.copy(), ub=form.ub.copy())
    heap: list[_Node] = [root]
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf

    while heap:
        if stats.nodes_explored >= node_limit:
            status = SolveStatus.FEASIBLE if incumbent_x is not None else SolveStatus.ERROR
            return make_solution(status, incumbent_x, "node limit reached")
        if time_limit is not None and time.monotonic() - start > time_limit:
            status = SolveStatus.FEASIBLE if incumbent_x is not None else SolveStatus.ERROR
            return make_solution(status, incumbent_x, "time limit reached")

        node = heapq.heappop(heap)
        # Bound-based pruning against the current incumbent.
        if node.bound >= incumbent_obj - gap_tolerance:
            stats.nodes_pruned += 1
            continue

        relax = solve_lp_arrays(
            form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
            node.lb, node.ub, engine=relaxation_engine,
        )
        stats.nodes_explored += 1
        stats.lp_iterations += relax.iterations

        if relax.status == "infeasible":
            continue
        if relax.status == "unbounded":
            if node.depth == 0 and not integral.any():
                return make_solution(SolveStatus.UNBOUNDED, None, "LP relaxation unbounded")
            # An unbounded relaxation with integer variables means the MILP
            # itself is unbounded along a continuous ray.
            return make_solution(SolveStatus.UNBOUNDED, None, "relaxation unbounded")
        if relax.status != "optimal":
            status = SolveStatus.FEASIBLE if incumbent_x is not None else SolveStatus.ERROR
            return make_solution(status, incumbent_x, f"relaxation failed: {relax.status}")

        if relax.objective >= incumbent_obj - gap_tolerance:
            stats.nodes_pruned += 1
            continue

        branch_var = _most_fractional(relax.x, integral)
        if branch_var is None:
            # Integral solution: new incumbent.
            if relax.objective < incumbent_obj - 1e-12:
                incumbent_obj = relax.objective
                incumbent_x = relax.x.copy()
            continue

        value = relax.x[branch_var]
        floor_val = math.floor(value + INT_TOL)
        # Down branch: x <= floor(value)
        down_lb, down_ub = node.lb.copy(), node.ub.copy()
        down_ub[branch_var] = min(down_ub[branch_var], floor_val)
        heapq.heappush(
            heap,
            _Node(relax.objective, next(counter), down_lb, down_ub, node.depth + 1),
        )
        # Up branch: x >= floor(value) + 1
        up_lb, up_ub = node.lb.copy(), node.ub.copy()
        up_lb[branch_var] = max(up_lb[branch_var], floor_val + 1)
        heapq.heappush(
            heap,
            _Node(relax.objective, next(counter), up_lb, up_ub, node.depth + 1),
        )

    if incumbent_x is None:
        return make_solution(SolveStatus.INFEASIBLE, None, "search exhausted, no incumbent")
    return make_solution(SolveStatus.OPTIMAL, incumbent_x, "search exhausted")
