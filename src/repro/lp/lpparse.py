"""CPLEX LP-file *reader*.

Completes the interchange layer: models written by
:mod:`repro.lp.lpformat` (or by CPLEX/Gurobi/HiGHS tooling using the
same dialect) can be read back into a :class:`~repro.lp.problem.Problem`
and solved with any backend.  Supported sections: objective
(``Minimize``/``Maximize``), ``Subject To``, ``Bounds``, ``Generals``,
``Binaries``, ``End``; ``\\* ... *\\`` comments are stripped anywhere.
"""

from __future__ import annotations

import math
import re

from .expressions import LinExpr, Sense, Variable, VarType
from .problem import ObjectiveSense, Problem


class LPParseError(ValueError):
    """The text is not a well-formed LP file (for the supported dialect)."""


_COMMENT_RE = re.compile(r"\\\*.*?\*\\", re.DOTALL)
_SECTION_ALIASES = {
    "minimize": "objective-min",
    "minimise": "objective-min",
    "min": "objective-min",
    "maximize": "objective-max",
    "maximise": "objective-max",
    "max": "objective-max",
    "subject to": "constraints",
    "such that": "constraints",
    "st": "constraints",
    "s.t.": "constraints",
    "bounds": "bounds",
    "bound": "bounds",
    "generals": "generals",
    "general": "generals",
    "gen": "generals",
    "binaries": "binaries",
    "binary": "binaries",
    "bin": "binaries",
    "end": "end",
}

#: token pattern: number, identifier, operator, or sense
_TOKEN_RE = re.compile(
    r"""
    (?P<number>[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)
  | (?P<name>[A-Za-z!"#$%&()/,;?@_`'{}|~.][A-Za-z0-9!"#$%&()/,;?@_`'{}|~.\[\]]*)
  | (?P<sense><=|>=|=<|=>|=|<|>)
  | (?P<op>[+\-:])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise LPParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


def _split_sections(text: str) -> list[tuple[str, str]]:
    """Split the file into (section-kind, body) pairs in order."""
    text = _COMMENT_RE.sub(" ", text)
    # Find section headers at line starts (case-insensitive).
    pattern = re.compile(
        r"^\s*(minimize|minimise|min|maximize|maximise|max|subject\s+to|such\s+that"
        r"|st|s\.t\.|bounds?|generals?|gen|binar(?:ies|y)|bin|end)\s*$|"
        r"^\s*(minimize|minimise|min|maximize|maximise|max|subject\s+to|such\s+that)\b",
        re.IGNORECASE | re.MULTILINE,
    )
    matches = list(pattern.finditer(text))
    if not matches:
        raise LPParseError("no LP sections found")
    sections: list[tuple[str, str]] = []
    for i, match in enumerate(matches):
        raw = (match.group(1) or match.group(2)).lower()
        raw = re.sub(r"\s+", " ", raw)
        kind = _SECTION_ALIASES.get(raw)
        if kind is None:
            raise LPParseError(f"unknown section header {raw!r}")
        start = match.end()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections.append((kind, text[start:end]))
    return sections


class _ExprParser:
    """Parse ``[label:] ±c x ±c y ... [sense rhs]`` token streams."""

    def __init__(self, get_var) -> None:
        self.get_var = get_var

    def parse(self, tokens: list[tuple[str, str]]):
        """Return (label, LinExpr, sense|None, rhs|None)."""
        label = None
        idx = 0
        if (
            len(tokens) >= 2
            and tokens[0][0] == "name"
            and tokens[1] == ("op", ":")
        ):
            label = tokens[0][1]
            idx = 2

        expr = LinExpr()
        sense: Sense | None = None
        rhs_sign = 1.0
        rhs_terms = LinExpr()
        sign = 1.0
        pending_coef: float | None = None
        target = "lhs"

        def add_term(coef: float, name: str | None) -> None:
            nonlocal expr, rhs_terms
            term = (
                LinExpr(constant=coef)
                if name is None
                else LinExpr({self.get_var(name): coef})
            )
            if target == "lhs":
                expr = expr + term
            else:
                rhs_terms = rhs_terms + term

        while idx < len(tokens):
            kind, value = tokens[idx]
            if kind == "op" and value in "+-":
                if pending_coef is not None:
                    add_term(sign * pending_coef, None)
                    pending_coef = None
                sign = 1.0 if value == "+" else -1.0
                idx += 1
                continue
            if kind == "number":
                if pending_coef is not None:
                    add_term(sign * pending_coef, None)
                    sign = 1.0
                pending_coef = float(value)
                idx += 1
                continue
            if kind == "name":
                coef = pending_coef if pending_coef is not None else 1.0
                add_term(sign * coef, value)
                pending_coef = None
                sign = 1.0
                idx += 1
                continue
            if kind == "sense":
                if pending_coef is not None:
                    add_term(sign * pending_coef, None)
                    pending_coef = None
                    sign = 1.0
                if sense is not None:
                    raise LPParseError("two relational operators in one constraint")
                sense = {
                    "<=": Sense.LE, "=<": Sense.LE, "<": Sense.LE,
                    ">=": Sense.GE, "=>": Sense.GE, ">": Sense.GE,
                    "=": Sense.EQ,
                }[value]
                target = "rhs"
                idx += 1
                continue
            raise LPParseError(f"unexpected token {value!r}")
        if pending_coef is not None:
            add_term(sign * pending_coef, None)
        return label, expr, sense, rhs_terms


def parse_lp_string(text: str, name: str = "parsed") -> Problem:
    """Parse LP-format text into a fresh :class:`Problem`.

    Variables are created on first reference with the LP default domain
    (continuous, ``[0, +inf)``); Bounds/Generals/Binaries sections then
    adjust them.
    """
    problem = Problem(name=name)
    variables: dict[str, Variable] = {}

    def get_var(var_name: str) -> Variable:
        if var_name not in variables:
            variables[var_name] = problem.add_variable(var_name)
        return variables[var_name]

    parser = _ExprParser(get_var)
    objective_seen = False

    for kind, body in _split_sections(text):
        if kind == "end":
            break
        if kind in ("objective-min", "objective-max"):
            tokens = _tokenize(body)
            label, expr, sense, _ = parser.parse(tokens)
            if sense is not None:
                raise LPParseError("objective cannot contain a relational operator")
            problem.set_objective(
                expr,
                sense=ObjectiveSense.MINIMIZE
                if kind == "objective-min"
                else ObjectiveSense.MAXIMIZE,
            )
            objective_seen = True
        elif kind == "constraints":
            for line in _constraint_lines(body):
                tokens = _tokenize(line)
                if not tokens:
                    continue
                label, expr, sense, rhs = parser.parse(tokens)
                if sense is None:
                    raise LPParseError(f"constraint without relation: {line.strip()!r}")
                con = {
                    Sense.LE: expr.__le__,
                    Sense.GE: expr.__ge__,
                    Sense.EQ: expr.__eq__,
                }[sense](rhs)
                problem.add_constraint(con, label or "")
        elif kind == "bounds":
            for line in body.splitlines():
                line = line.strip()
                if line:
                    _apply_bound(line, get_var)
        elif kind == "generals":
            for _, token in _tokenize(body):
                variables_token = get_var(token)
                variables_token.vtype = VarType.INTEGER
        elif kind == "binaries":
            for _, token in _tokenize(body):
                var = get_var(token)
                var.vtype = VarType.BINARY
                var.lb = 0.0 if var.lb is None else max(0.0, var.lb)
                var.ub = 1.0 if var.ub is None else min(1.0, var.ub)

    if not objective_seen:
        raise LPParseError("LP file lacks an objective section")
    return problem


def _constraint_lines(body: str):
    """Constraints may wrap: join physical lines until one has a sense."""
    buffer = ""
    for line in body.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        buffer = f"{buffer} {stripped}" if buffer else stripped
        if re.search(r"(<=|>=|=<|=>|=|<|>)\s*[+-]?\s*[0-9.]", buffer):
            yield buffer
            buffer = ""
    if buffer.strip():
        yield buffer


_BOUND_PATTERNS = [
    # lo <= x <= hi
    (
        re.compile(
            r"^\s*(?P<lo>-?(?:inf(?:inity)?|[0-9.eE+-]+))\s*<=\s*(?P<var>\S+)\s*<=\s*"
            r"(?P<hi>-?(?:inf(?:inity)?|[0-9.eE+-]+))\s*$",
            re.IGNORECASE,
        ),
        "range",
    ),
    (re.compile(r"^\s*(?P<var>\S+)\s*>=\s*(?P<lo>-?(?:inf(?:inity)?|[0-9.eE+-]+))\s*$", re.IGNORECASE), "lower"),
    (re.compile(r"^\s*(?P<var>\S+)\s*<=\s*(?P<hi>-?(?:inf(?:inity)?|[0-9.eE+-]+))\s*$", re.IGNORECASE), "upper"),
    (re.compile(r"^\s*(?P<var>\S+)\s*=\s*(?P<fix>-?[0-9.eE+-]+)\s*$"), "fixed"),
    (re.compile(r"^\s*(?P<var>\S+)\s+free\s*$", re.IGNORECASE), "free"),
]


def _value(text: str) -> float | None:
    lowered = text.lower()
    if lowered in ("-inf", "-infinity"):
        return None  # unbounded below
    if lowered in ("inf", "+inf", "infinity", "+infinity"):
        return math.inf
    return float(text)


def _apply_bound(line: str, get_var) -> None:
    for pattern, kind in _BOUND_PATTERNS:
        match = pattern.match(line)
        if not match:
            continue
        var = get_var(match.group("var"))
        if kind == "range":
            lo = _value(match.group("lo"))
            hi = _value(match.group("hi"))
            var.lb = lo
            var.ub = None if hi == math.inf else hi
        elif kind == "lower":
            lo = _value(match.group("lo"))
            var.lb = lo
        elif kind == "upper":
            hi = _value(match.group("hi"))
            var.ub = None if hi == math.inf else hi
            if var.lb == 0.0 and hi is not None and hi < 0:
                # LP convention: an upper bound below the default lower
                # bound implies the variable is negative: free it below.
                var.lb = None
        elif kind == "fixed":
            value = float(match.group("fix"))
            var.lb = value
            var.ub = value
        elif kind == "free":
            var.lb = None
            var.ub = None
        return
    raise LPParseError(f"unparseable bound line: {line!r}")


def read_lp_file(path: str, name: str | None = None) -> Problem:
    """Read and parse an LP file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_lp_string(text, name=name or path)
