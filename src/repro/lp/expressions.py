"""Linear-expression algebra for the optimization engine.

This module provides the small modeling vocabulary that the rest of the
library uses to state linear programs: :class:`Variable`, :class:`LinExpr`
(an affine combination of variables) and :class:`Constraint`.  Expressions
support the natural arithmetic operators so model-building code reads like
the mathematics in the paper::

    x = Variable("x", lb=0.0)
    y = Variable("y", lb=0.0)
    expr = 3 * x + 2 * y - 1
    con = expr <= 10
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Iterable, Mapping, Union

Number = Union[int, float]

#: Domains a decision variable may take.
class VarType(Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(Enum):
    """Relational sense of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "="


class Variable:
    """A single decision variable.

    Variables are identity-hashed: two variables with the same name are
    still distinct model objects.  Names are only used for LP-file output
    and debugging.

    Parameters
    ----------
    name:
        Human-readable identifier; must be non-empty.
    lb, ub:
        Lower / upper bound.  ``None`` means unbounded on that side.
    vtype:
        Variable domain.  ``BINARY`` forces bounds into ``[0, 1]``.
    """

    __slots__ = ("name", "lb", "ub", "vtype")

    def __init__(
        self,
        name: str,
        lb: float | None = 0.0,
        ub: float | None = None,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        if vtype is VarType.BINARY:
            lb = 0.0 if lb is None else max(0.0, float(lb))
            ub = 1.0 if ub is None else min(1.0, float(ub))
        if lb is not None and ub is not None and lb > ub:
            raise ValueError(
                f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}"
            )
        self.name = name
        self.lb = None if lb is None else float(lb)
        self.ub = None if ub is None else float(ub)
        self.vtype = vtype

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.vtype in (VarType.INTEGER, VarType.BINARY)

    # -- arithmetic: delegate to LinExpr -------------------------------
    def to_expr(self) -> "LinExpr":
        """Return this variable as a one-term linear expression."""
        return LinExpr({self: 1.0})

    def __add__(self, other: object) -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: object) -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: object) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: object) -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, other: object) -> "LinExpr":
        return self.to_expr() * other

    def __rmul__(self, other: object) -> "LinExpr":
        return self.to_expr() * other

    def __truediv__(self, other: object) -> "LinExpr":
        return self.to_expr() / other

    def __neg__(self) -> "LinExpr":
        return -self.to_expr()

    def __le__(self, other: object) -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other: object) -> "Constraint":
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        # Comparison against numbers/expressions builds a constraint;
        # comparison against another object falls back to identity.
        if isinstance(other, (int, float, Variable, LinExpr)):
            return self.to_expr() == other
        return NotImplemented

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, lb={self.lb}, ub={self.ub}, {self.vtype.value})"


class LinExpr:
    """An affine expression ``sum(coef * var) + constant``.

    Instances are immutable from the caller's perspective: every operator
    returns a new expression.  Use :meth:`terms` to inspect coefficients.
    """

    __slots__ = ("_coeffs", "constant")

    def __init__(
        self,
        coeffs: Mapping[Variable, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self._coeffs: dict[Variable, float] = {}
        if coeffs:
            for var, coef in coeffs.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"expected Variable key, got {type(var).__name__}")
                coef = float(coef)
                if coef != 0.0:
                    self._coeffs[var] = coef
        self.constant = float(constant)

    # -- inspection -----------------------------------------------------
    def terms(self) -> dict[Variable, float]:
        """Return a copy of the variable → coefficient mapping."""
        return dict(self._coeffs)

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` (0.0 when absent)."""
        return self._coeffs.get(var, 0.0)

    def variables(self) -> list[Variable]:
        """The variables appearing with non-zero coefficient."""
        return list(self._coeffs)

    def is_constant(self) -> bool:
        """True when the expression contains no variables."""
        return not self._coeffs

    def evaluate(self, values: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment.

        Raises
        ------
        KeyError
            If a participating variable is missing from ``values``.
        """
        total = self.constant
        for var, coef in self._coeffs.items():
            total += coef * values[var]
        return total

    # -- algebra ---------------------------------------------------------
    def _copy(self) -> "LinExpr":
        out = LinExpr()
        out._coeffs = dict(self._coeffs)
        out.constant = self.constant
        return out

    @staticmethod
    def _as_expr(other: object) -> "LinExpr | None":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other.to_expr()
        if isinstance(other, (int, float)):
            if isinstance(other, float) and math.isnan(other):
                raise ValueError("NaN is not a valid expression constant")
            return LinExpr(constant=float(other))
        return None

    def __add__(self, other: object) -> "LinExpr":
        rhs = self._as_expr(other)
        if rhs is None:
            return NotImplemented
        out = self._copy()
        out.constant += rhs.constant
        for var, coef in rhs._coeffs.items():
            new = out._coeffs.get(var, 0.0) + coef
            if new == 0.0:
                out._coeffs.pop(var, None)
            else:
                out._coeffs[var] = new
        return out

    def __radd__(self, other: object) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: object) -> "LinExpr":
        rhs = self._as_expr(other)
        if rhs is None:
            return NotImplemented
        return self + (rhs * -1.0)

    def __rsub__(self, other: object) -> "LinExpr":
        lhs = self._as_expr(other)
        if lhs is None:
            return NotImplemented
        return lhs - self

    def __mul__(self, other: object) -> "LinExpr":
        if not isinstance(other, (int, float)):
            raise TypeError("linear expressions only support scalar multiplication")
        scalar = float(other)
        if math.isnan(scalar):
            raise ValueError("NaN scalar")
        out = LinExpr(constant=self.constant * scalar)
        if scalar != 0.0:
            out._coeffs = {v: c * scalar for v, c in self._coeffs.items()}
        return out

    def __rmul__(self, other: object) -> "LinExpr":
        return self.__mul__(other)

    def __truediv__(self, other: object) -> "LinExpr":
        if not isinstance(other, (int, float)):
            raise TypeError("linear expressions only support scalar division")
        if other == 0:
            raise ZeroDivisionError("division of expression by zero")
        return self * (1.0 / float(other))

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- constraint construction -----------------------------------------
    def __le__(self, other: object) -> "Constraint":
        return Constraint.build(self, Sense.LE, other)

    def __ge__(self, other: object) -> "Constraint":
        return Constraint.build(self, Sense.GE, other)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (int, float, Variable, LinExpr)):
            return Constraint.build(self, Sense.EQ, other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self._coeffs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def quicksum(items: Iterable[object]) -> LinExpr:
    """Sum variables/expressions/numbers into a single :class:`LinExpr`.

    Faster and clearer than ``sum(...)`` for model building because it
    accumulates coefficients in-place instead of allocating an expression
    per addition.
    """
    coeffs: dict[Variable, float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Variable):
            coeffs[item] = coeffs.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            constant += item.constant
            for var, coef in item._coeffs.items():
                coeffs[var] = coeffs.get(var, 0.0) + coef
        elif isinstance(item, (int, float)):
            constant += float(item)
        else:
            raise TypeError(f"cannot sum object of type {type(item).__name__}")
    out = LinExpr(constant=constant)
    out._coeffs = {v: c for v, c in coeffs.items() if c != 0.0}
    return out


class Constraint:
    """A linear constraint ``expr (<=|>=|=) rhs`` in normalized form.

    The normalized form keeps all variable terms on the left-hand side and
    a numeric right-hand side, i.e. ``sum(coef*var) sense rhs``.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(self, expr: LinExpr, sense: Sense, rhs: float, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def build(cls, lhs: LinExpr, sense: Sense, rhs: object) -> "Constraint":
        """Normalize ``lhs sense rhs`` by moving everything variable to the left."""
        rhs_expr = LinExpr._as_expr(rhs)
        if rhs_expr is None:
            raise TypeError(f"invalid constraint right-hand side: {rhs!r}")
        moved = lhs - rhs_expr
        rhs_value = -moved.constant
        normalized = moved._copy()
        normalized.constant = 0.0
        return cls(normalized, sense, rhs_value)

    def with_name(self, name: str) -> "Constraint":
        """Return the same constraint carrying a display name."""
        return Constraint(self.expr, self.sense, self.rhs, name=name)

    def is_satisfied(self, values: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check the constraint under an assignment, within tolerance."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def violation(self, values: Mapping[Variable, float]) -> float:
        """Magnitude of constraint violation (0.0 when satisfied)."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"Constraint({label}{self.expr!r} {self.sense.value} {self.rhs:g})"
