"""Knapsack cover cuts for 0-1 capacity rows.

The consolidation MILP is packed with knapsack rows
(``Σ a_i x_i ≤ b`` over binaries — the capacity constraints).  A *cover*
is a subset C with ``Σ_{i∈C} a_i > b``: all of C cannot be chosen, so

.. math::  Σ_{i∈C} x_i ≤ |C| − 1

is valid for every integer point yet can cut off fractional LP optima.
This module separates violated cover cuts at a fractional point and is
used by the branch-and-bound solver as an optional cut-and-branch pass
at the root node.

Separation uses the classical heuristic: to find a cover whose cut is
violated at ``x*``, greedily take items in decreasing ``x*`` order until
the weights exceed the capacity, then minimize the cover (drop items
while it stays a cover, heaviest-``x*`` kept first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Only cut on rows where every coefficient and variable is knapsack-like.
_EPS = 1e-9


@dataclass(frozen=True)
class CoverCut:
    """A cover cut ``Σ_{i in members} x_i <= len(members) - 1``."""

    row: int
    members: tuple[int, ...]

    @property
    def rhs(self) -> int:
        return len(self.members) - 1

    def violation(self, x: np.ndarray) -> float:
        return float(sum(x[i] for i in self.members) - self.rhs)


def binary_mask(
    integral: np.ndarray,
    lb: np.ndarray | None,
    ub: np.ndarray | None,
) -> np.ndarray:
    """Columns provably binary: integral with bounds inside ``[0, 1]``.

    Without bound arrays nothing is provably binary — a cover cut
    ``Σ x_i ≤ |C| − 1`` is *invalid* for a general integer with
    ``ub > 1`` (it can cut off integer-feasible points), so callers must
    supply bounds to get any usable rows.
    """
    integral = np.asarray(integral, dtype=bool)
    if lb is None or ub is None:
        return np.zeros_like(integral)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    return integral & (lb >= -_EPS) & (ub <= 1.0 + _EPS)


def knapsack_rows(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    integral: np.ndarray,
    lb: np.ndarray | None = None,
    ub: np.ndarray | None = None,
) -> list[int]:
    """Indices of rows usable for cover separation.

    A usable row has non-negative coefficients, a positive rhs, and all
    its support on binary (integral *and* 0/1-bounded) variables.  The
    bound arrays are what prove the 0/1 part; without them no row
    qualifies.
    """
    binary = binary_mask(integral, lb, ub)
    rows = []
    for r in range(a_ub.shape[0]):
        row = a_ub[r]
        support = np.nonzero(row)[0]
        if support.size < 2:
            continue
        if b_ub[r] <= _EPS:
            continue
        if (row[support] < 0).any():
            continue
        if not binary[support].all():
            continue
        rows.append(r)
    return rows


def separate_cover_cut(
    row: np.ndarray,
    rhs: float,
    x: np.ndarray,
    row_index: int,
    min_violation: float = 1e-4,
) -> CoverCut | None:
    """Find one violated, minimal cover cut for a knapsack row, if any."""
    support = np.nonzero(row)[0]
    # Greedy: order by fractional value (desc), then weight (desc).
    order = sorted(support, key=lambda i: (-x[i], -row[i]))
    cover: list[int] = []
    weight = 0.0
    for i in order:
        cover.append(int(i))
        weight += float(row[i])
        if weight > rhs + _EPS:
            break
    else:
        return None  # the whole support fits: no cover exists

    # Minimize: drop members (lowest x* first) while still a cover.
    cover.sort(key=lambda i: x[i])
    trimmed = list(cover)
    for i in list(cover):
        if weight - row[i] > rhs + _EPS:
            trimmed.remove(i)
            weight -= float(row[i])
    cut = CoverCut(row=row_index, members=tuple(sorted(trimmed)))
    if cut.violation(x) < min_violation:
        return None
    return cut


def separate_cuts(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    x: np.ndarray,
    integral: np.ndarray,
    max_cuts: int = 50,
    lb: np.ndarray | None = None,
    ub: np.ndarray | None = None,
) -> list[CoverCut]:
    """Separate violated cover cuts at a fractional point, best first."""
    cuts: list[CoverCut] = []
    for r in knapsack_rows(a_ub, b_ub, integral, lb, ub):
        cut = separate_cover_cut(a_ub[r], float(b_ub[r]), x, r)
        if cut is not None:
            cuts.append(cut)
    cuts.sort(key=lambda c: -c.violation(x))
    return cuts[:max_cuts]


def cuts_to_rows(
    cuts: list[CoverCut], num_columns: int
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize cuts as (A, b) rows for appending to A_ub/b_ub."""
    a = np.zeros((len(cuts), num_columns))
    b = np.zeros(len(cuts))
    for k, cut in enumerate(cuts):
        for i in cut.members:
            a[k, i] = 1.0
        b[k] = cut.rhs
    return a, b
