"""Fixed-format MPS writer.

MPS is the other lingua franca of MILP solvers (older and stricter than
the LP format).  This writer emits fixed-column MPS with ``ROWS``,
``COLUMNS`` (with integer markers), ``RHS``, ``RANGES``-free ``BOUNDS``
and ``ENDATA`` sections — consumable by CPLEX, Gurobi, HiGHS, GLPK and
SCIP.  Names longer than eight characters are deterministically
shortened (MPS fixed format caps field width), with the mapping
returned for tooling that needs to translate solutions back.
"""

from __future__ import annotations

from .expressions import Sense, Variable, VarType
from .problem import ObjectiveSense, Problem

#: Fixed-format MPS name-field width.
_NAME_WIDTH = 8


def _short_names(items: list[str], prefix: str) -> dict[str, str]:
    """Map arbitrary names to unique ≤8-char MPS identifiers."""
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for index, name in enumerate(items):
        cleaned = "".join(ch for ch in name if ch.isalnum())[:_NAME_WIDTH]
        candidate = cleaned or f"{prefix}{index}"
        if candidate in used or not candidate[0].isalpha():
            candidate = f"{prefix}{index}"
        # Collisions after cleaning: fall back to indexed names.
        while candidate in used:
            index += 1
            candidate = f"{prefix}{index}"
        mapping[name] = candidate
        used.add(candidate)
    return mapping


def write_mps_string(problem: Problem) -> tuple[str, dict[str, str]]:
    """Serialize to fixed MPS; returns ``(text, original→mps name map)``.

    Maximization problems are emitted negated (MPS has no objective
    sense section in the classic dialect); the caller must negate the
    objective value back.
    """
    sign = 1.0 if problem.sense == ObjectiveSense.MINIMIZE else -1.0
    var_names = _short_names([v.name for v in problem.variables], "X")
    row_names = _short_names(
        [c.name or f"c{i}" for i, c in enumerate(problem.constraints)], "R"
    )

    lines: list[str] = [f"NAME          {problem.name[:_NAME_WIDTH].upper() or 'MODEL'}"]

    lines.append("ROWS")
    lines.append(" N  OBJ")
    sense_codes = {Sense.LE: "L", Sense.GE: "G", Sense.EQ: "E"}
    ordered_rows: list[tuple[str, object]] = []
    for i, con in enumerate(problem.constraints):
        row = row_names[con.name or f"c{i}"]
        lines.append(f" {sense_codes[con.sense]}  {row}")
        ordered_rows.append((row, con))

    # Column-major coefficient listing with integer markers.
    lines.append("COLUMNS")
    marker_open = False
    marker_count = 0
    for var in problem.variables:
        name = var_names[var.name]
        if var.is_integral and not marker_open:
            lines.append(
                f"    MARKER{marker_count:>22}  'MARKER'                 'INTORG'"
            )
            marker_open = True
            marker_count += 1
        elif not var.is_integral and marker_open:
            lines.append(
                f"    MARKER{marker_count:>22}  'MARKER'                 'INTEND'"
            )
            marker_open = False
            marker_count += 1
        entries: list[tuple[str, float]] = []
        obj_coef = sign * problem.objective.coefficient(var)
        if obj_coef != 0.0:
            entries.append(("OBJ", obj_coef))
        for row, con in ordered_rows:
            coef = con.expr.coefficient(var)
            if coef != 0.0:
                entries.append((row, coef))
        if not entries:
            entries.append(("OBJ", 0.0))
        for k in range(0, len(entries), 2):
            pair = entries[k : k + 2]
            line = f"    {name:<10}"
            for row, coef in pair:
                line += f"{row:<10}{coef:<12.6g}  "
            lines.append(line.rstrip())
    if marker_open:
        lines.append(
            f"    MARKER{marker_count:>22}  'MARKER'                 'INTEND'"
        )

    lines.append("RHS")
    for row, con in ordered_rows:
        if con.rhs != 0.0:
            lines.append(f"    RHS       {row:<10}{con.rhs:<12.6g}")

    lines.append("BOUNDS")
    for var in problem.variables:
        name = var_names[var.name]
        if var.vtype is VarType.BINARY:
            lines.append(f" BV BND       {name}")
            continue
        lb, ub = var.lb, var.ub
        if lb is None and ub is None:
            lines.append(f" FR BND       {name}")
            continue
        if lb is None:
            lines.append(f" MI BND       {name}")
        elif lb != 0.0:
            lines.append(f" LO BND       {name:<10}{lb:<12.6g}")
        if ub is not None:
            lines.append(f" UP BND       {name:<10}{ub:<12.6g}")

    lines.append("ENDATA")
    return "\n".join(lines) + "\n", var_names


def write_mps_file(problem: Problem, path: str) -> dict[str, str]:
    """Write MPS to ``path``; returns the original→mps variable map."""
    text, mapping = write_mps_string(problem)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return mapping
