"""CPLEX LP-file writer.

The paper's implementation communicates between the transformation module
and the optimization engine via a file in the LP format and hands it to
CPLEX (Fig. 5).  We reproduce that interchange layer: any
:class:`~repro.lp.problem.Problem` can be serialized to the textual LP
format, which CPLEX, Gurobi, HiGHS or GLPK could consume unchanged.
"""

from __future__ import annotations

import math
import re

from .expressions import Sense, Variable, VarType
from .problem import ObjectiveSense, Problem

#: Characters allowed in an LP-format identifier.
_NAME_RE = re.compile(r"[^A-Za-z0-9_.#$%&()/,;?@^{}~!\"'`|]")


def sanitize_name(name: str) -> str:
    """Make a string safe as an LP-format identifier.

    LP identifiers cannot contain whitespace or operators and cannot
    start with a digit or the letter combination that starts a keyword
    followed by punctuation; we conservatively prefix problem cases.
    """
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit() or cleaned[0] in ".":
        cleaned = "x_" + cleaned
    return cleaned


def _format_terms(terms: dict[Variable, float], names: dict[Variable, str]) -> str:
    """Render ``coef var`` terms with explicit signs, wrapped in lines."""
    if not terms:
        return "0 " + next(iter(names.values()), "x0") if names else "0"
    pieces: list[str] = []
    for i, (var, coef) in enumerate(terms.items()):
        sign = "-" if coef < 0 else ("+" if i > 0 else "")
        mag = abs(coef)
        coef_str = "" if mag == 1.0 else f"{mag:.12g} "
        pieces.append(f"{sign} {coef_str}{names[var]}".strip())
    # Wrap at ~8 terms per line for readability of large models.
    lines = [" ".join(pieces[i : i + 8]) for i in range(0, len(pieces), 8)]
    return "\n   ".join(lines)


def write_lp_string(problem: Problem) -> str:
    """Serialize a problem to the CPLEX LP file format."""
    names: dict[Variable, str] = {}
    used: set[str] = set()
    for idx, var in enumerate(problem.variables):
        base = sanitize_name(var.name)
        candidate = base
        suffix = 1
        while candidate in used:
            candidate = f"{base}_{suffix}"
            suffix += 1
        names[var] = candidate
        used.add(candidate)

    lines: list[str] = [f"\\* Problem: {problem.name} *\\"]
    header = "Minimize" if problem.sense == ObjectiveSense.MINIMIZE else "Maximize"
    lines.append(header)
    obj_terms = _format_terms(problem.objective.terms(), names)
    constant = problem.objective.constant
    if constant:
        # LP format has no objective constant; encode via a fixed dummy
        # convention noted in a comment (solvers ignore comments).
        lines.append(f"\\* objective constant {constant:.12g} omitted *\\")
    lines.append(f" obj: {obj_terms}")

    lines.append("Subject To")
    for con in problem.constraints:
        label = sanitize_name(con.name) if con.name else ""
        sense = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}[con.sense]
        body = _format_terms(con.expr.terms(), names)
        prefix = f" {label}: " if label else " "
        lines.append(f"{prefix}{body} {sense} {con.rhs:.12g}")

    bound_lines: list[str] = []
    for var in problem.variables:
        if var.vtype is VarType.BINARY:
            continue  # the Binaries section implies [0, 1]
        lb, ub = var.lb, var.ub
        name = names[var]
        if lb is None and ub is None:
            bound_lines.append(f" {name} free")
        elif lb == 0.0 and ub is None:
            continue  # LP default bound
        elif ub is None:
            bound_lines.append(f" {name} >= {lb:.12g}")
        elif lb is None:
            bound_lines.append(f" -inf <= {name} <= {ub:.12g}")
        else:
            bound_lines.append(f" {lb:.12g} <= {name} <= {ub:.12g}")
    if bound_lines:
        lines.append("Bounds")
        lines.extend(bound_lines)

    generals = [names[v] for v in problem.variables if v.vtype is VarType.INTEGER]
    binaries = [names[v] for v in problem.variables if v.vtype is VarType.BINARY]
    if generals:
        lines.append("Generals")
        lines.extend(f" {n}" for n in generals)
    if binaries:
        lines.append("Binaries")
        lines.extend(f" {n}" for n in binaries)
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp_file(problem: Problem, path: str) -> None:
    """Write the LP-format serialization of ``problem`` to ``path``."""
    text = write_lp_string(problem)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _check_finite(value: float, context: str) -> None:
    if not math.isfinite(value):
        raise ValueError(f"non-finite coefficient in {context}")
