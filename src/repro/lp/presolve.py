"""LP/MILP presolve: cheap reductions before the real solve.

Implements the classic safe reductions every industrial solver applies
first:

* **fixed variables** (``lb == ub``) are substituted into every
  constraint and the objective;
* **empty constraints** are checked against their rhs and dropped (or
  the model is declared infeasible on the spot);
* **singleton rows** (one variable) are turned into bound updates and
  dropped, with crossing bounds again proving infeasibility;
* rounds repeat until a fixpoint, since each reduction can expose more.

The reduced model solves faster on any backend; :class:`Postsolver`
re-inflates a reduced solution to the original variable space.  All
reductions are exact — optima are preserved, which the tests verify on
random models against an un-presolved reference solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..telemetry import SolveStats
from .expressions import Constraint, LinExpr, Sense, Variable
from .problem import Problem
from .solution import Solution, SolveStatus

#: Tolerance for bound crossings and rhs feasibility checks.
_TOL = 1e-9


class PresolveInfeasible(Exception):
    """Presolve proved the model infeasible (no solve needed)."""


@dataclass
class PresolveStats:
    """What presolve accomplished."""

    fixed_variables: int = 0
    dropped_constraints: int = 0
    tightened_bounds: int = 0
    rounds: int = 0


@dataclass
class Postsolver:
    """Maps a reduced-model solution back to the original model."""

    original: Problem
    fixed_values: dict[Variable, float] = field(default_factory=dict)
    clone_to_original: dict[Variable, Variable] = field(default_factory=dict)
    stats: PresolveStats = field(default_factory=PresolveStats)

    def _merged_stats(self, solution: Solution) -> SolveStats:
        """The backend's stats with our presolve reductions folded in."""
        stats = solution.stats or SolveStats(backend=solution.solver)
        return stats.merge_presolve(
            fixed_variables=self.stats.fixed_variables,
            dropped_constraints=self.stats.dropped_constraints,
            tightened_bounds=self.stats.tightened_bounds,
            rounds=self.stats.rounds,
        )

    def expand(self, solution: Solution) -> Solution:
        """Inflate ``solution`` back onto the original variables."""
        if not solution.status.has_solution:
            solution.stats = self._merged_stats(solution)
            return solution
        values = {
            self.clone_to_original.get(var, var): value
            for var, value in solution.values.items()
        }
        for var, value in self.fixed_values.items():
            values[var] = value
        objective = self.original.evaluate_objective(values)
        return Solution(
            status=solution.status,
            objective=objective,
            values=values,
            solver=solution.solver + "+presolve",
            iterations=solution.iterations,
            message=solution.message,
            stats=self._merged_stats(solution),
        )


def _tighten(var: Variable, sense: Sense, bound: float, stats: PresolveStats) -> None:
    """Apply a singleton-row implication to a variable's bounds."""
    if sense is Sense.LE:
        if var.ub is None or bound < var.ub:
            var.ub = bound
            stats.tightened_bounds += 1
    elif sense is Sense.GE:
        if var.lb is None or bound > var.lb:
            var.lb = bound
            stats.tightened_bounds += 1
    else:  # EQ fixes the variable — after checking the implied value is
        # inside the *pre-existing* bounds.  Overwriting first would
        # silently "fix" e.g. ``x == 5`` with ``x <= 2`` at 5 instead of
        # proving infeasibility.
        if (var.lb is not None and bound < var.lb - _TOL) or (
            var.ub is not None and bound > var.ub + _TOL
        ):
            raise PresolveInfeasible(
                f"variable {var.name!r} fixed at {bound} outside its bounds "
                f"[{var.lb}, {var.ub}]"
            )
        var.lb = bound
        var.ub = bound
        stats.tightened_bounds += 1
    if var.lb is not None and var.ub is not None and var.lb > var.ub + _TOL:
        raise PresolveInfeasible(
            f"variable {var.name!r} has crossing bounds [{var.lb}, {var.ub}]"
        )
    if var.is_integral:
        # Snap fractional bounds onto the integer hull so downstream
        # relaxations are tighter and the reduction count stays honest.
        if var.lb is not None:
            lo = math.ceil(var.lb - _TOL)
            if lo > var.lb:
                var.lb = float(lo)
                stats.tightened_bounds += 1
        if var.ub is not None:
            hi = math.floor(var.ub + _TOL)
            if hi < var.ub:
                var.ub = float(hi)
                stats.tightened_bounds += 1
        if var.lb is not None and var.ub is not None and var.lb > var.ub:
            raise PresolveInfeasible(
                f"integer variable {var.name!r} has no integer in [{var.lb}, {var.ub}]"
            )


def presolve(problem: Problem, max_rounds: int = 20) -> tuple[Problem, Postsolver]:
    """Return an equivalent reduced problem and its postsolver.

    Raises
    ------
    PresolveInfeasible
        When a reduction proves the model has no feasible point.
    """
    stats = PresolveStats()
    fixed: dict[Variable, float] = {}

    # Work on copies of variables so callers' Problem stays untouched.
    clones: dict[Variable, Variable] = {
        v: Variable(v.name, lb=v.lb, ub=v.ub, vtype=v.vtype)
        for v in problem.variables
    }

    def clone_expr(expr: LinExpr) -> LinExpr:
        out = LinExpr(constant=expr.constant)
        for var, coef in expr.terms().items():
            out = out + clones[var] * coef
        return out

    constraints: list[Constraint] = [
        Constraint(clone_expr(c.expr), c.sense, c.rhs, name=c.name)
        for c in problem.constraints
    ]
    objective = clone_expr(problem.objective)

    for round_index in range(max_rounds):
        stats.rounds = round_index + 1
        changed = False

        # 1. Fix variables with collapsed bounds; substitute everywhere.
        newly_fixed = {
            var: var.lb
            for var in clones.values()
            if var.lb is not None and var.ub is not None
            and abs(var.ub - var.lb) <= _TOL
            and var not in {clones[k] for k in fixed}
        }
        if newly_fixed:
            changed = True
            stats.fixed_variables += len(newly_fixed)
            substitution = dict(newly_fixed)
            rewritten: list[Constraint] = []
            for con in constraints:
                shift = 0.0
                expr = con.expr
                terms = expr.terms()
                for var, value in substitution.items():
                    coef = terms.get(var, 0.0)
                    if coef:
                        expr = expr - var * coef
                        shift += coef * value
                rewritten.append(
                    Constraint(expr, con.sense, con.rhs - shift, name=con.name)
                )
            constraints = rewritten
            for var, value in substitution.items():
                coef = objective.coefficient(var)
                if coef:
                    objective = objective - var * coef + coef * value
            for original, clone in clones.items():
                if clone in substitution:
                    fixed[original] = substitution[clone]

        # 2. Empty and singleton rows.
        kept: list[Constraint] = []
        for con in constraints:
            terms = con.expr.terms()
            if not terms:
                satisfied = {
                    Sense.LE: 0.0 <= con.rhs + _TOL,
                    Sense.GE: 0.0 >= con.rhs - _TOL,
                    Sense.EQ: abs(con.rhs) <= _TOL,
                }[con.sense]
                if not satisfied:
                    raise PresolveInfeasible(
                        f"constraint {con.name!r} reduced to 0 {con.sense.value} {con.rhs}"
                    )
                stats.dropped_constraints += 1
                changed = True
                continue
            if len(terms) == 1:
                (var, coef), = terms.items()
                bound = con.rhs / coef
                sense = con.sense
                if coef < 0 and sense is not Sense.EQ:
                    sense = Sense.GE if sense is Sense.LE else Sense.LE
                _tighten(var, sense, bound, stats)
                stats.dropped_constraints += 1
                changed = True
                continue
            kept.append(con)
        constraints = kept

        if not changed:
            break

    reduced = Problem(name=problem.name + "-presolved", sense=problem.sense)
    live = [
        clone
        for original, clone in clones.items()
        if original not in fixed
    ]
    for var in live:
        reduced.attach_variable(var)
    for con in constraints:
        reduced.add_constraint(con, con.name)
    reduced.set_objective(objective)

    postsolver = Postsolver(original=problem, stats=stats)
    postsolver.fixed_values = dict(fixed)
    postsolver.clone_to_original = {
        clone: original for original, clone in clones.items()
    }
    return reduced, postsolver


def solve_with_presolve(
    problem: Problem, backend: str = "auto", options=None, **legacy_options
) -> Solution:
    """Convenience: presolve, solve the reduction, postsolve.

    ``options`` is a typed :class:`repro.lp.SolveOptions`; plain keyword
    options are forwarded to :func:`repro.lp.solve`'s deprecated shim.
    """
    from .solvers import solve as _solve

    try:
        reduced, postsolver = presolve(problem)
    except PresolveInfeasible as exc:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            solver="presolve",
            message=str(exc),
            stats=SolveStats(backend="presolve"),
        )
    if reduced.num_variables == 0:
        # Presolve decided everything; any surviving row was verified.
        return postsolver.expand(
            Solution(
                status=SolveStatus.OPTIMAL,
                objective=reduced.objective.constant,
                values={},
                solver="presolve",
                message="model fully reduced",
            )
        )
    solution = _solve(reduced, backend=backend, options=options, **legacy_options)
    return postsolver.expand(solution)
