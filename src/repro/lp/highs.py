"""HiGHS backend via :mod:`scipy.optimize`.

This is the production-scale engine: SciPy bundles the open-source HiGHS
solver, which stands in for the paper's CPLEX.  MILPs go through
:func:`scipy.optimize.milp`; pure LPs through :func:`scipy.optimize.linprog`.
Constraint matrices are assembled sparsely so case-study-sized models
(hundreds of thousands of binaries) remain tractable.
"""

from __future__ import annotations

import contextlib
import os
import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from ..telemetry import SolveStats
from .problem import Problem
from .solution import Solution, SolveStatus
from .sparse import bound_arrays, constraint_blocks, objective_arrays

#: scipy.optimize.milp status codes → our statuses.
_MILP_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,   # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


@contextlib.contextmanager
def _silence_native_stdout():
    """Mute HiGHS's C++ progress chatter (it bypasses Python's stdout).

    Some HiGHS builds print internal diagnostics straight to fd 1 even
    with ``disp`` off; benchmarks and reports must stay clean.
    """
    try:
        stdout_fd = os.dup(1)
    except OSError:  # pragma: no cover - exotic environments without fd 1
        yield
        return
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        os.dup2(devnull, 1)
        yield
    finally:
        os.dup2(stdout_fd, 1)
        os.close(stdout_fd)
        os.close(devnull)


def _build_sparse(problem: Problem):
    """Assemble (c, c0, A, cl, cu, bounds, integrality, sign) sparsely.

    A thin scipy wrapper over the shared assembly path
    (:func:`repro.lp.sparse.constraint_blocks`) — the same triplets the
    revised core and the dense view consume.
    """
    blocks = constraint_blocks(problem)
    c, c0, sign = objective_arrays(problem)
    lb, ub, integrality = bound_arrays(problem)
    row_lb, row_ub = blocks.row_bounds()
    matrix = sparse.csr_matrix(
        (blocks.data, blocks.cols, blocks.row_ptr),
        shape=(blocks.n_rows, blocks.n_cols),
    )
    return (
        blocks.variables, c, c0, matrix, row_lb, row_ub, lb, ub, integrality, sign,
    )


def solve_with_highs(
    problem: Problem,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> Solution:
    """Solve ``problem`` with HiGHS; exact up to the requested gap."""
    start = time.monotonic()
    (
        variables, c, c0, matrix, row_lb, row_ub, lb, ub, integrality, sign,
    ) = _build_sparse(problem)

    if integrality.any():
        options: dict = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = float(mip_rel_gap)
        constraints = (
            LinearConstraint(matrix, row_lb, row_ub) if matrix.shape[0] else ()
        )
        with _silence_native_stdout():
            res = milp(
                c=c,
                constraints=constraints,
                integrality=integrality,
                bounds=Bounds(lb, ub),
                options=options or None,
            )
        status = _MILP_STATUS.get(res.status, SolveStatus.ERROR)
        if res.x is None and status.has_solution:
            status = SolveStatus.ERROR
        values: dict = {}
        objective = float("nan")
        if res.x is not None:
            x = np.asarray(res.x, dtype=float)
            x[integrality.astype(bool)] = np.round(x[integrality.astype(bool)])
            values = {var: float(x[i]) for i, var in enumerate(variables)}
            objective = sign * (float(c @ x) + c0)
        stats = SolveStats(
            backend="highs",
            elapsed_seconds=time.monotonic() - start,
            incumbent=objective,
        )
        node_count = getattr(res, "mip_node_count", None)
        if node_count is not None:
            stats.nodes_explored = int(node_count)
        gap = getattr(res, "mip_gap", None)
        if gap is not None:
            stats.mip_gap = float(gap)
        dual_bound = getattr(res, "mip_dual_bound", None)
        if dual_bound is not None and np.isfinite(dual_bound):
            stats.best_bound = sign * (float(dual_bound) + c0)
        if status is SolveStatus.OPTIMAL:
            # HiGHS builds without gap attributes: optimal means gap 0.
            if gap is None:
                stats.mip_gap = 0.0
            if not np.isfinite(stats.best_bound):
                stats.best_bound = objective
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solver="highs-milp",
            message=str(res.message),
            stats=stats,
        )

    # Pure LP: linprog wants A_ub/A_eq split.
    eq_mask = row_lb == row_ub
    ub_mask = ~eq_mask
    a_eq = matrix[eq_mask] if eq_mask.any() else None
    b_eq = row_ub[eq_mask] if eq_mask.any() else None
    # Rows with only one finite side become <= rows (flip >= rows).
    a_parts = []
    b_parts = []
    if ub_mask.any():
        sub = matrix[ub_mask]
        lo = row_lb[ub_mask]
        hi = row_ub[ub_mask]
        finite_hi = np.isfinite(hi)
        finite_lo = np.isfinite(lo)
        if finite_hi.any():
            a_parts.append(sub[finite_hi])
            b_parts.append(hi[finite_hi])
        if finite_lo.any():
            a_parts.append(-sub[finite_lo])
            b_parts.append(-lo[finite_lo])
    a_ub = sparse.vstack(a_parts) if a_parts else None
    b_ub = np.concatenate(b_parts) if b_parts else None

    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=np.column_stack([lb, ub]),
        method="highs",
    )
    status = {
        0: SolveStatus.OPTIMAL,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
    }.get(res.status, SolveStatus.ERROR)
    values = {}
    objective = float("nan")
    if res.x is not None and status.has_solution:
        values = {var: float(res.x[i]) for i, var in enumerate(variables)}
        objective = sign * (float(c @ res.x) + c0)
    iterations = int(getattr(res, "nit", 0))
    stats = SolveStats(
        backend="highs",
        elapsed_seconds=time.monotonic() - start,
        lp_iterations=iterations,
        incumbent=objective,
        best_bound=objective if status is SolveStatus.OPTIMAL else float("-inf"),
        mip_gap=0.0 if status is SolveStatus.OPTIMAL else float("nan"),
    )
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solver="highs-lp",
        iterations=iterations,
        message=str(res.message),
        stats=stats,
    )
