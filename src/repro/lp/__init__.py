"""Optimization-engine substrate: modeling layer, solvers, LP-file I/O.

This subpackage is a self-contained miniature of the modeling-plus-solver
stack the paper builds on (Python modeling layer + CPLEX).  Typical use::

    from repro.lp import Problem, quicksum, solve

    prob = Problem("toy")
    x = prob.add_binary("x")
    y = prob.add_binary("y")
    prob.add_constraint(x + y <= 1)
    prob.set_objective(-(2 * x + 3 * y))
    solution = solve(prob, backend="branch_bound")
"""

from ..telemetry import SolveStats
from .expressions import Constraint, LinExpr, Sense, Variable, VarType, quicksum
from .fingerprint import (
    payload_fingerprint,
    problem_fingerprint,
    structure_fingerprint,
)
from .lpformat import write_lp_file, write_lp_string
from .lpparse import LPParseError, parse_lp_string, read_lp_file
from .master import MasterSolution, RestrictedMasterLP
from .mpsformat import write_mps_file, write_mps_string
from .options import SolveOptions
from .presolve import PresolveInfeasible, presolve, solve_with_presolve
from .problem import ObjectiveSense, Problem
from .revised_simplex import RevisedResult, SparseBoundedLP, solve_bounded_lp
from .solution import Solution, SolveStatus
from .solvers import SolveCache, available_backends, register_backend, solve
from .sparse import CSCMatrix, ConstraintBlocks, constraint_blocks

__all__ = [
    "CSCMatrix",
    "Constraint",
    "ConstraintBlocks",
    "LPParseError",
    "LinExpr",
    "MasterSolution",
    "RestrictedMasterLP",
    "RevisedResult",
    "SparseBoundedLP",
    "constraint_blocks",
    "solve_bounded_lp",
    "ObjectiveSense",
    "Problem",
    "SolveCache",
    "SolveOptions",
    "payload_fingerprint",
    "problem_fingerprint",
    "structure_fingerprint",
    "parse_lp_string",
    "presolve",
    "PresolveInfeasible",
    "read_lp_file",
    "solve_with_presolve",
    "Sense",
    "Solution",
    "SolveStats",
    "SolveStatus",
    "Variable",
    "VarType",
    "available_backends",
    "quicksum",
    "register_backend",
    "solve",
    "write_lp_file",
    "write_lp_string",
    "write_mps_file",
    "write_mps_string",
]
