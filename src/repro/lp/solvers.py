"""Solver backend registry and the public :func:`solve` entry point.

Backends:

``highs``
    SciPy's bundled HiGHS (exact, fast; the default — the reproduction's
    stand-in for the paper's CPLEX).
``branch_bound``
    Our from-scratch best-first B&B over LP relaxations (exact).
``simplex``
    Our from-scratch two-phase simplex; pure LPs only.
``rounding``
    Relax-and-round heuristic (feasible, not optimal).
``auto``
    ``highs`` when available, else ``branch_bound[builtin]``.

Options are carried by a typed :class:`~repro.lp.options.SolveOptions`
record validated against the chosen backend; the old ``**kwargs`` style
still works but warns ``DeprecationWarning``.  Externally registered
backends (:func:`register_backend`) keep the ``fn(problem, **options)``
calling convention.

Every solve that passes through :func:`solve` is recorded by the
telemetry layer: the ``solves.*`` counters are bumped and — when a trace
writer is active (CLI ``--trace FILE``) — one JSONL record is emitted
per solve, carrying the backend's :class:`~repro.telemetry.SolveStats`.

Incremental re-solves go through :class:`SolveCache`: a fingerprint-keyed
solution cache plus warm-start plumbing (previous-incumbent MIP starts
and persistent :class:`~repro.lp.matrix_lp.RelaxationContext` reuse for
``branch_bound``) that makes solving a *sequence* of closely related
models much cheaper than solving each cold.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

import numpy as np

from ..telemetry import SolveStats, metrics, record_solve
from .branch_bound import solve_branch_and_bound
from .fingerprint import (
    constraint_digest,
    extend_structure_fingerprint,
    objective_digest,
    problem_fingerprint,
    structure_fingerprint,
)
from .matrix_lp import RelaxationContext, solve_lp_arrays
from .options import SolveOptions, options_from_kwargs
from .problem import Problem
from .rounding import solve_with_rounding
from .solution import Solution, SolveStatus
from .sparse import objective_arrays
from .standard_form import to_matrix_form


def _solve_simplex(problem: Problem, options: SolveOptions) -> Solution:
    """Pure-LP solve with the builtin simplex."""
    if problem.is_mip:
        raise ValueError(
            "the simplex backend handles pure LPs only; "
            "use 'branch_bound' or 'highs' for integer models"
        )
    start = time.monotonic()
    form = to_matrix_form(problem)
    result = solve_lp_arrays(
        form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
        form.lb, form.ub, engine="builtin",
        max_iterations=options.max_iterations,
    )
    status = {
        "optimal": SolveStatus.OPTIMAL,
        "infeasible": SolveStatus.INFEASIBLE,
        "unbounded": SolveStatus.UNBOUNDED,
    }.get(result.status, SolveStatus.ERROR)
    values = {}
    objective = float("nan")
    if result.x is not None and status.has_solution:
        values = {var: float(result.x[i]) for i, var in enumerate(form.variables)}
        objective = problem.evaluate_objective(values)
    stats = SolveStats(
        backend="simplex",
        elapsed_seconds=time.monotonic() - start,
        lp_iterations=result.iterations,
        phase1_iterations=result.phase1_iterations,
        phase2_iterations=result.phase2_iterations,
        bland_switches=result.bland_switches,
        degenerate_pivots=result.degenerate_pivots,
        refactorizations=result.refactorizations,
        eta_file_length=result.eta_file_length,
        pricing_passes=result.pricing_passes,
        bound_flips=result.bound_flips,
        incumbent=objective,
        best_bound=objective if status is SolveStatus.OPTIMAL else float("-inf"),
        mip_gap=0.0 if status is SolveStatus.OPTIMAL else float("nan"),
    )
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solver="simplex",
        iterations=result.iterations,
        message=result.status,
        stats=stats,
    )


def _solve_branch_bound(
    problem: Problem,
    options: SolveOptions,
    form=None,
    context: RelaxationContext | None = None,
    basis_io: dict | None = None,
) -> Solution:
    return solve_branch_and_bound(
        problem,
        relaxation_engine=options.relaxation_engine,
        node_limit=options.node_limit,
        time_limit=options.time_limit,
        gap_tolerance=options.gap_tolerance,
        cover_cut_rounds=options.cover_cut_rounds,
        max_iterations=options.max_iterations,
        node_resolve=options.node_resolve,
        presolve=options.presolve,
        warm_start=options.warm_start,
        form=form,
        context=context,
        basis_io=basis_io,
    )


def _solve_highs(problem: Problem, options: SolveOptions) -> Solution:
    # Imported lazily so that environments without scipy can still load
    # this module and fall back to the builtin solvers (see _solve_auto).
    from .highs import solve_with_highs

    # SciPy's milp/linprog expose no solution-hint API, so a warm_start
    # is accepted (the incremental layer passes one to every backend)
    # but cannot be forwarded; the drop is counted, never silent.
    if options.warm_start is not None:
        metrics.increment("incremental.warm_start_unsupported")
    return solve_with_highs(
        problem,
        time_limit=options.time_limit,
        mip_rel_gap=options.mip_rel_gap,
    )


def _solve_rounding(problem: Problem, options: SolveOptions) -> Solution:
    return solve_with_rounding(
        problem, engine=options.relaxation_engine, presolve=options.presolve
    )


def _solve_auto(problem: Problem, options: SolveOptions) -> Solution:
    try:
        return _solve_highs(problem, options)
    except ImportError:  # no scipy: fall back to the pure-python stack
        # The fallback drops the HiGHS-only gap option explicitly and
        # switches node relaxations to the builtin simplex.
        fallback = options.replace(relaxation_engine="builtin", mip_rel_gap=None)
        return _solve_branch_bound(problem, fallback)


_BACKENDS: dict[str, Callable[..., Solution]] = {
    "highs": _solve_highs,
    "branch_bound": _solve_branch_bound,
    "simplex": _solve_simplex,
    "rounding": _solve_rounding,
    "auto": _solve_auto,
}

#: Built-in backends take a typed ``SolveOptions``; externally registered
#: ones keep receiving ``**kwargs`` (their functions predate the record).
_TYPED_BACKENDS = frozenset(_BACKENDS)


def available_backends() -> list[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_BACKENDS)


def register_backend(name: str, fn: Callable[..., Solution]) -> None:
    """Register a custom backend (used by tests and extensions)."""
    if name in _BACKENDS:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = fn


def solve(
    problem: Problem,
    backend: str = "auto",
    options: SolveOptions | None = None,
    cache: "SolveCache | None" = None,
    **legacy_options,
) -> Solution:
    """Solve ``problem`` with the named backend.

    ``options`` is the typed way to configure the solve; it is validated
    against the chosen backend so engine-specific flags can no longer be
    silently ignored.  Extra keyword options are still accepted for
    backwards compatibility (``time_limit=...``), emit a
    ``DeprecationWarning``, and cannot be combined with ``options``.

    ``cache`` routes the call through a :class:`SolveCache`:
    fingerprint-identical re-solves return the cached solution, and
    misses are warm-started from the cache's previous incumbent.
    """
    try:
        fn = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        ) from None

    if backend in _TYPED_BACKENDS:
        if legacy_options:
            if options is not None:
                raise TypeError(
                    "pass either a SolveOptions record or keyword options, not both"
                )
            options = options_from_kwargs(backend, legacy_options)
        else:
            options = (options or SolveOptions()).validate_for(backend)
        if cache is not None:
            return cache.solve(problem, backend, options)
        call = lambda: fn(problem, options)
    else:
        if options is not None:
            legacy_options = dict(options.as_kwargs(), **legacy_options)
        call = lambda: fn(problem, **legacy_options)

    start = time.monotonic()
    solution = call()
    record_solve(
        problem=problem.name,
        backend=backend,
        solver=solution.solver,
        status=solution.status.value,
        objective=solution.objective,
        stats=solution.stats,
        elapsed_seconds=time.monotonic() - start,
    )
    return solution


class SolveCache:
    """Fingerprint-keyed solve cache with warm-start seeding.

    One cache serves one *refinement session*: a sequence of solves of
    closely related models (the paper's iterative-modification loop).
    Four mechanisms stack, strongest first:

    * **solution reuse** — a model whose canonical fingerprint was
      already solved returns the stored :class:`Solution` without any
      solver work (an ``undo`` directive makes this exact case);
    * **tightening shortcut** — when the model changed only by
      *shrinking* the feasible region (bounds narrowed, constraints
      appended — which is every pin/forbid/retire/cap directive) and the
      previous optimum still satisfies the new bounds and rows, that
      point is provably still optimal (the minimum over a subset cannot
      be lower, and the old argmin is in the subset), so the re-solve is
      a feasibility check instead of a search;
    * **structure reuse** (``branch_bound`` only) — models sharing the
      cached context's matrices (same constraint rows, different bounds)
      reuse one :class:`~repro.lp.matrix_lp.RelaxationContext`, so the
      re-solve skips matrix conversion and standardization, and the
      previous root simplex basis warm-starts the new root relaxation.
      When the model differs only by *appended* inequality rows or a
      swapped objective — which is every cap/pin/forbid/retire/move-
      penalty directive — the context is **extended in place** instead
      of rebuilt: rows append to the standardized family, the structure
      key chains (``parent ⊕ appended-row digests``, see
      :func:`~repro.lp.fingerprint.extend_structure_fingerprint`), and
      the previous root basis token is extended with the new rows'
      slacks so the next root solve re-enters through the dual simplex
      instead of a cold start;
    * **incumbent seeding** — the previous solve's point (or a repaired
      hint supplied via ``options.warm_start``) becomes the new solve's
      MIP start when feasible, so pruning bites from node one.  An
      installed :attr:`hint_repairer` gets a chance to *project* a
      stale incumbent back into the feasible region (shift load off a
      newly-capped site) before the hint is offered, so a directive that
      invalidates the incumbent no longer forfeits the MIP start.

    Lifetime telemetry lives in the ``incremental.*`` counters and in
    :attr:`hits` / :attr:`misses` / :attr:`context_reuses` /
    :attr:`context_extensions` / :attr:`hints_repaired`.
    """

    def __init__(self, max_solutions: int = 64) -> None:
        if max_solutions < 1:
            raise ValueError("max_solutions must be at least 1")
        self.max_solutions = max_solutions
        self._solutions: dict[str, Solution] = {}
        self._last: Solution | None = None
        self._structure_key: str | None = None
        self._context: RelaxationContext | None = None
        self._form = None
        self._basis_io: dict = {}
        #: Optional ``(problem, hint) -> dict | None`` callback: return a
        #: repaired name→value hint when the given one is infeasible for
        #: ``problem`` and fixable, ``None`` to leave the hint alone.
        self.hint_repairer = None
        # Snapshot of the model state the last solution was solved
        # against, for the tightening shortcut: variable identities,
        # bound arrays, the constraint list prefix and the objective.
        self._snap_vars: list | None = None
        self._snap_lb: np.ndarray | None = None
        self._snap_ub: np.ndarray | None = None
        self._snap_constraints: list | None = None
        self._snap_objective = None
        # Snapshot of the model state the cached context standardized,
        # for extension matching: solver options, variable identities,
        # per-row identities + content digests, objective identity +
        # digest.  Row matching is identity-first with a content-digest
        # fallback, because directive journals pop and re-apply rows
        # wholesale — same content, fresh Python objects.
        self._ctx_opt_key: str | None = None
        self._ctx_vars: list | None = None
        self._ctx_var_index: dict | None = None
        self._ctx_constraints: list | None = None
        self._ctx_row_digests: list | None = None
        self._ctx_objective = None
        self._ctx_obj_digest: bytes | None = None
        self._ctx_sense: str | None = None
        self.hits = 0
        self.misses = 0
        self.context_reuses = 0
        self.context_rebuilds = 0
        self.context_extensions = 0
        self.objective_swaps = 0
        self.hints_repaired = 0
        self.tightening_reuses = 0

    @property
    def last_solution(self) -> Solution | None:
        """The most recent solution produced through this cache."""
        return self._last

    def stats(self) -> dict[str, int]:
        """JSON-safe lifetime statistics (what the service's /metrics shows)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "tightening_reuses": self.tightening_reuses,
            "context_reuses": self.context_reuses,
            "context_rebuilds": self.context_rebuilds,
            "context_extensions": self.context_extensions,
            "objective_swaps": self.objective_swaps,
            "hints_repaired": self.hints_repaired,
            "solutions_cached": len(self._solutions),
        }

    def clear(self) -> None:
        """Drop every cached solution, context and basis."""
        self._solutions.clear()
        self._last = None
        self._structure_key = None
        self._context = None
        self._form = None
        self._basis_io = {}
        self._snap_vars = None
        self._snap_lb = None
        self._snap_ub = None
        self._snap_constraints = None
        self._snap_objective = None
        self._ctx_opt_key = None
        self._ctx_vars = None
        self._ctx_var_index = None
        self._ctx_constraints = None
        self._ctx_row_digests = None
        self._ctx_objective = None
        self._ctx_obj_digest = None
        self._ctx_sense = None

    # -- internals ---------------------------------------------------------

    def _remember(self, fingerprint: str, solution: Solution, problem: Problem) -> None:
        if fingerprint in self._solutions:
            self._solutions.pop(fingerprint)
        elif len(self._solutions) >= self.max_solutions:
            # FIFO eviction: refinement sessions revisit *recent* states
            # (undo), so dropping the oldest entry is the cheap win.
            oldest = next(iter(self._solutions))
            self._solutions.pop(oldest)
        self._solutions[fingerprint] = solution
        self._last = solution
        self._snap_vars = list(problem.variables)
        self._snap_lb = np.array(
            [-np.inf if v.lb is None else v.lb for v in self._snap_vars]
        )
        self._snap_ub = np.array(
            [np.inf if v.ub is None else v.ub for v in self._snap_vars]
        )
        self._snap_constraints = list(problem.constraints)
        self._snap_objective = problem.objective

    def _tightened_reuse(self, problem: Problem) -> Solution | None:
        """The previous optimum, when it provably survives the model edit.

        Sound only when the new feasible region is a *subset* of the old
        one: every variable bound at least as tight (same Variable
        objects), the old constraint list an identical prefix of the new
        one, the objective untouched.  Then if the stored optimum still
        satisfies the new bounds and the appended rows, it is optimal
        for the new model too — min over a subset cannot beat it, and it
        is in the subset.  Any doubt returns ``None`` (full solve).
        """
        last = self._last
        if last is None or not last.status.has_solution or self._snap_vars is None:
            return None
        variables = problem.variables
        if len(variables) != len(self._snap_vars):
            return None
        for var, snap in zip(variables, self._snap_vars):
            if var is not snap:
                return None
        if problem.objective is not self._snap_objective:
            return None
        constraints = problem.constraints
        n_old = len(self._snap_constraints)
        if len(constraints) < n_old:
            return None
        for con, snap in zip(constraints, self._snap_constraints):
            if con is not snap:
                return None
        lb = np.array([-np.inf if v.lb is None else v.lb for v in variables])
        ub = np.array([np.inf if v.ub is None else v.ub for v in variables])
        if (lb < self._snap_lb - 1e-12).any() or (ub > self._snap_ub + 1e-12).any():
            return None  # some bound loosened: region grew, optimum may move
        x = np.array([last.value(v, 0.0) for v in variables])
        tol = 1e-6
        if (x < lb - tol).any() or (x > ub + tol).any():
            return None  # a directive cut the old optimum off
        for con in constraints[n_old:]:
            lhs = sum(
                coef * last.value(var, 0.0) for var, coef in con.expr.terms().items()
            )
            slack_tol = tol * max(1.0, abs(con.rhs))
            if con.sense.value == "<=" and lhs > con.rhs + slack_tol:
                return None
            if con.sense.value == ">=" and lhs < con.rhs - slack_tol:
                return None
            if con.sense.value == "=" and abs(lhs - con.rhs) > slack_tol:
                return None
        return last

    def _hint_from_last(self) -> Mapping[str, float] | None:
        if self._last is None or not self._last.status.has_solution:
            return None
        return self._last.as_name_dict()

    def _refresh_form_bounds(self, problem: Problem) -> None:
        """Refresh the cached form's variables and bound arrays.

        Re-reads variables from the live problem: bounds are taken from
        it, and ``Solution.values`` must be keyed by *its* Variable
        objects.  Bound moves between finite values never break any
        cached standardization (every model variable here has a finite
        lower bound), so the context survives the whole session.
        """
        form = self._form
        form.variables = problem.variables
        form.lb = np.array(
            [-np.inf if v.lb is None else v.lb for v in form.variables]
        )
        form.ub = np.array(
            [np.inf if v.ub is None else v.ub for v in form.variables]
        )

    def _reuse_or_extend(self, problem: Problem):
        """Reuse the cached context, extending it in place when possible.

        Matching is identity-first with a content-digest fallback per
        row: a directive ``sync`` pops the journal to the common prefix
        and re-applies the rest, so an unchanged model state routinely
        arrives with the tail of its constraint list re-created as fresh
        (but byte-identical) objects.  Rows *past* the cached prefix are
        appended to the context (inequalities only — an equality append
        would splice into the middle of the standardized slack stack);
        an objective that changed content is swapped in place when the
        sign survives.  Returns ``(form, context, basis_io)`` or ``None``
        when only a full rebuild is sound.
        """
        variables = problem.variables
        if self._ctx_vars is None or len(variables) != len(self._ctx_vars):
            return None
        for var, old in zip(variables, self._ctx_vars):
            if var is not old:
                return None
        if problem.sense != self._ctx_sense:
            return None
        constraints = problem.constraints
        ctx_rows = self._ctx_constraints
        digests = self._ctx_row_digests
        if len(constraints) < len(ctx_rows):
            return None  # rows were removed: a family cannot shrink in place
        for i, old in enumerate(ctx_rows):
            con = constraints[i]
            if con is old:
                continue
            if constraint_digest(con) != digests[i]:
                return None  # genuinely different row inside the prefix
            ctx_rows[i] = con  # same content, fresh object: adopt it
        appended = constraints[len(ctx_rows):]
        var_index = self._ctx_var_index
        for con in appended:
            if con.sense.value == "=":
                return None
            if any(var not in var_index for var in con.expr.terms()):
                return None  # references a variable the context never saw

        # Objective: unchanged by identity or content, else swappable.
        swap = None
        if problem.objective is not self._ctx_objective:
            obj_digest = objective_digest(problem)
            if obj_digest != self._ctx_obj_digest:
                c_new, c0_new, sign_new = objective_arrays(problem)
                if sign_new != self._form.objective_sign:
                    return None
                swap = (c_new, c0_new, obj_digest)

        context, form = self._context, self._form
        if appended:
            k, n = len(appended), len(variables)
            a_app = np.zeros((k, n))
            b_app = np.empty(k)
            app_digests = []
            for r, con in enumerate(appended):
                rhs = float(con.rhs)
                for var, coef in con.expr.terms().items():
                    a_app[r, var_index[var]] += coef
                if con.sense.value == ">=":
                    a_app[r] *= -1.0
                    rhs = -rhs
                b_app[r] = rhs
                app_digests.append(constraint_digest(con))
            if not context.extend_rows(a_app, b_app):
                return None
            # The form mirrors the cold convention (appended non-EQ rows
            # land at the end of a_ub), so incumbent-hint validation and
            # objective evaluation see exactly what a rebuild would.
            form.a_ub = np.vstack([form.a_ub, a_app])
            form.b_ub = np.concatenate([form.b_ub, b_app])
            ctx_rows.extend(appended)
            digests.extend(app_digests)
            # Outstanding warm tokens predate the new rows; extend each
            # with the appended slacks (dual-feasible by construction).
            for key in list(self._basis_io):
                if key == "pseudo":
                    # Learned pseudo-costs are per-column and the column
                    # set is untouched by a row append: carry unchanged.
                    continue
                token = context.extend_warm_token(self._basis_io[key])
                if token is not None:
                    self._basis_io[key] = token
                else:
                    self._basis_io.pop(key)
            self._structure_key = extend_structure_fingerprint(
                self._structure_key or "", problem, app_digests
            )
            self.context_extensions += 1
            metrics.increment("incremental.context_extended")
        if swap is not None:
            c_new, c0_new, obj_digest = swap
            if not context.set_objective_vector(c_new):
                return None
            # context.c *is* form.c (shared array), so only c0 remains.
            form.c0 = c0_new
            self._ctx_obj_digest = obj_digest
            if not appended:
                self._structure_key = extend_structure_fingerprint(
                    self._structure_key or "", problem, []
                )
            self.objective_swaps += 1
            metrics.increment("incremental.objective_swapped")
        self._ctx_objective = problem.objective

        self._refresh_form_bounds(problem)
        if appended or swap is not None:
            return form, context, self._basis_io
        self.context_reuses += 1
        metrics.increment("incremental.context_reuses")
        return form, context, self._basis_io

    def _context_for(self, problem: Problem, options: SolveOptions):
        """(form, context, basis_io) for a branch_bound solve, reusing when safe."""
        if options.cover_cut_rounds > 0:
            return None, None, None  # cuts mutate the row set; no reuse
        opt_key = (
            f"{options.relaxation_engine}|{options.node_resolve}"
            f"|{int(options.presolve)}"
        )
        if self._context is not None and self._ctx_opt_key == opt_key:
            reused = self._reuse_or_extend(problem)
            if reused is not None:
                return reused
        form = to_matrix_form(problem)
        self.context_rebuilds += 1
        metrics.increment("incremental.context_rebuilds")
        self._context = RelaxationContext(
            form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
            form.lb, form.ub, engine=options.relaxation_engine,
            max_iterations=options.max_iterations,
            node_resolve=options.node_resolve,
            presolve=options.presolve,
            integrality=form.integrality,
        )
        self._form = form
        self._structure_key = f"{structure_fingerprint(problem)}|{opt_key}"
        self._ctx_opt_key = opt_key
        self._ctx_vars = list(problem.variables)
        self._ctx_var_index = {v: i for i, v in enumerate(self._ctx_vars)}
        self._ctx_constraints = list(problem.constraints)
        self._ctx_row_digests = [
            constraint_digest(con) for con in self._ctx_constraints
        ]
        self._ctx_objective = problem.objective
        self._ctx_obj_digest = objective_digest(problem)
        self._ctx_sense = problem.sense
        # Everything in the channel goes, pseudo-costs included: a
        # structural break changes the cost landscape enough that stale
        # branching estimates mislead the next tree (measured: carrying
        # them across a rebuild triples the post-outage tree).
        self._basis_io = {}
        return form, self._context, self._basis_io

    # -- the cache-aware solve --------------------------------------------

    def solve(self, problem: Problem, backend: str, options: SolveOptions) -> Solution:
        """Solve through the cache (called by :func:`solve` with ``cache=``)."""
        fingerprint = problem_fingerprint(problem)
        cached = self._solutions.get(fingerprint)
        if cached is not None:
            self.hits += 1
            metrics.increment("incremental.fingerprint_hits")
            # Re-snapshot against the *current* problem (its bounds match
            # the fingerprint) so a later tightening check compares
            # against this state, not whatever was solved before it.
            self._remember(fingerprint, cached, problem)
            record_solve(
                problem=problem.name,
                backend=backend,
                solver=f"{cached.solver}[cached]",
                status=cached.status.value,
                objective=cached.objective,
                stats=cached.stats,
                elapsed_seconds=0.0,
            )
            return cached
        self.misses += 1
        metrics.increment("incremental.fingerprint_misses")

        survivor = self._tightened_reuse(problem)
        if survivor is not None:
            self.tightening_reuses += 1
            metrics.increment("incremental.tightening_reuses")
            self._remember(fingerprint, survivor, problem)
            record_solve(
                problem=problem.name,
                backend=backend,
                solver=f"{survivor.solver}[tightened]",
                status=survivor.status.value,
                objective=survivor.objective,
                stats=survivor.stats,
                elapsed_seconds=0.0,
            )
            return survivor

        hint_repaired = False
        if options.warm_start is None:
            hint = self._hint_from_last()
            if hint is not None:
                if self.hint_repairer is not None:
                    repaired = self.hint_repairer(problem, hint)
                    if repaired is not None:
                        hint = repaired
                        hint_repaired = True
                        self.hints_repaired += 1
                        metrics.increment("incremental.hint_repaired")
                options = options.replace(warm_start=hint)

        extensions_before = self.context_extensions
        start = time.monotonic()
        if backend == "branch_bound":
            form, context, basis_io = self._context_for(problem, options)
            solution = _solve_branch_bound(
                problem, options, form=form, context=context, basis_io=basis_io
            )
        else:
            solution = _BACKENDS[backend](problem, options)
        elapsed = time.monotonic() - start
        if solution.stats is not None:
            solution.stats.extra["fingerprint_cache"] = 0.0
            if self.context_extensions > extensions_before:
                solution.stats.context_extended = 1
            if hint_repaired:
                solution.stats.hint_repaired = 1
        record_solve(
            problem=problem.name,
            backend=backend,
            solver=solution.solver,
            status=solution.status.value,
            objective=solution.objective,
            stats=solution.stats,
            elapsed_seconds=elapsed,
        )
        self._remember(fingerprint, solution, problem)
        return solution
