"""Solver backend registry and the public :func:`solve` entry point.

Backends:

``highs``
    SciPy's bundled HiGHS (exact, fast; the default — the reproduction's
    stand-in for the paper's CPLEX).
``branch_bound``
    Our from-scratch best-first B&B over LP relaxations (exact).
``simplex``
    Our from-scratch two-phase simplex; pure LPs only.
``rounding``
    Relax-and-round heuristic (feasible, not optimal).
``auto``
    ``highs`` when available, else ``branch_bound[builtin]``.

Every solve that passes through :func:`solve` is recorded by the
telemetry layer: the ``solves.*`` counters are bumped and — when a trace
writer is active (CLI ``--trace FILE``) — one JSONL record is emitted
per solve, carrying the backend's :class:`~repro.telemetry.SolveStats`.
"""

from __future__ import annotations

import time
from typing import Callable

from ..telemetry import SolveStats, record_solve
from .branch_bound import solve_branch_and_bound
from .matrix_lp import solve_lp_arrays
from .problem import Problem
from .rounding import solve_with_rounding
from .solution import Solution, SolveStatus
from .standard_form import to_matrix_form


def _solve_simplex(problem: Problem, **options) -> Solution:
    """Pure-LP solve with the builtin simplex."""
    if problem.is_mip:
        raise ValueError(
            "the simplex backend handles pure LPs only; "
            "use 'branch_bound' or 'highs' for integer models"
        )
    start = time.monotonic()
    form = to_matrix_form(problem)
    result = solve_lp_arrays(
        form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
        form.lb, form.ub, engine="builtin",
        max_iterations=options.get("max_iterations", 20000),
    )
    status = {
        "optimal": SolveStatus.OPTIMAL,
        "infeasible": SolveStatus.INFEASIBLE,
        "unbounded": SolveStatus.UNBOUNDED,
    }.get(result.status, SolveStatus.ERROR)
    values = {}
    objective = float("nan")
    if result.x is not None and status.has_solution:
        values = {var: float(result.x[i]) for i, var in enumerate(form.variables)}
        objective = problem.evaluate_objective(values)
    stats = SolveStats(
        backend="simplex",
        elapsed_seconds=time.monotonic() - start,
        lp_iterations=result.iterations,
        phase1_iterations=result.phase1_iterations,
        phase2_iterations=result.phase2_iterations,
        bland_switches=result.bland_switches,
        degenerate_pivots=result.degenerate_pivots,
        incumbent=objective,
        best_bound=objective if status is SolveStatus.OPTIMAL else float("-inf"),
        mip_gap=0.0 if status is SolveStatus.OPTIMAL else float("nan"),
    )
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solver="simplex",
        iterations=result.iterations,
        message=result.status,
        stats=stats,
    )


def _solve_branch_bound(problem: Problem, **options) -> Solution:
    return solve_branch_and_bound(
        problem,
        relaxation_engine=options.get("relaxation_engine", "highs"),
        node_limit=options.get("node_limit", 200000),
        time_limit=options.get("time_limit"),
        gap_tolerance=options.get("gap_tolerance", 1e-6),
        cover_cut_rounds=options.get("cover_cut_rounds", 0),
    )


def _solve_highs(problem: Problem, **options) -> Solution:
    # Imported lazily so that environments without scipy can still load
    # this module and fall back to the builtin solvers (see _solve_auto).
    from .highs import solve_with_highs

    return solve_with_highs(
        problem,
        time_limit=options.get("time_limit"),
        mip_rel_gap=options.get("mip_rel_gap"),
    )


def _solve_rounding(problem: Problem, **options) -> Solution:
    return solve_with_rounding(problem, engine=options.get("relaxation_engine", "highs"))


def _solve_auto(problem: Problem, **options) -> Solution:
    try:
        return _solve_highs(problem, **options)
    except ImportError:  # no scipy: fall back to the pure-python stack
        options = dict(options, relaxation_engine="builtin")
        return _solve_branch_bound(problem, **options)


_BACKENDS: dict[str, Callable[..., Solution]] = {
    "highs": _solve_highs,
    "branch_bound": _solve_branch_bound,
    "simplex": _solve_simplex,
    "rounding": _solve_rounding,
    "auto": _solve_auto,
}


def available_backends() -> list[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_BACKENDS)


def register_backend(name: str, fn: Callable[..., Solution]) -> None:
    """Register a custom backend (used by tests and extensions)."""
    if name in _BACKENDS:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = fn


def solve(problem: Problem, backend: str = "auto", **options) -> Solution:
    """Solve ``problem`` with the named backend.

    Extra keyword options are forwarded to the backend (``time_limit``,
    ``mip_rel_gap``, ``relaxation_engine``, ``node_limit``,
    ``cover_cut_rounds``, ...).
    """
    try:
        fn = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(available_backends())}"
        ) from None
    start = time.monotonic()
    solution = fn(problem, **options)
    record_solve(
        problem=problem.name,
        backend=backend,
        solver=solution.solver,
        status=solution.status.value,
        objective=solution.objective,
        stats=solution.stats,
        elapsed_seconds=time.monotonic() - start,
    )
    return solution
