"""Problem container: variables, constraints, objective.

A :class:`Problem` is the unit of work handed to a solver backend.  It
owns variable registration (ensuring unique names inside one model) and
keeps constraints in insertion order so LP files and matrices are
reproducible.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .expressions import Constraint, LinExpr, Sense, Variable, VarType


class ObjectiveSense:
    """Objective direction constants."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class Problem:
    """A linear / mixed-integer program under construction.

    Parameters
    ----------
    name:
        Model name, written into LP files.
    sense:
        ``ObjectiveSense.MINIMIZE`` (default) or ``MAXIMIZE``.
    """

    def __init__(self, name: str = "model", sense: str = ObjectiveSense.MINIMIZE) -> None:
        if sense not in (ObjectiveSense.MINIMIZE, ObjectiveSense.MAXIMIZE):
            raise ValueError(f"unknown objective sense: {sense!r}")
        self.name = name
        self.sense = sense
        self.objective: LinExpr = LinExpr()
        self._variables: list[Variable] = []
        self._var_names: set[str] = set()
        self._constraints: list[Constraint] = []

    # -- variables -------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lb: float | None = 0.0,
        ub: float | None = None,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a new variable.

        Raises
        ------
        ValueError
            On duplicate variable names within this problem.
        """
        if name in self._var_names:
            raise ValueError(f"duplicate variable name: {name!r}")
        var = Variable(name, lb=lb, ub=ub, vtype=vtype)
        self._variables.append(var)
        self._var_names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a binary variable."""
        return self.add_variable(name, vtype=VarType.BINARY)

    def add_integer(self, name: str, lb: float | None = 0.0, ub: float | None = None) -> Variable:
        """Shorthand for a general integer variable."""
        return self.add_variable(name, lb=lb, ub=ub, vtype=VarType.INTEGER)

    def attach_variable(self, var: Variable) -> Variable:
        """Register an externally-constructed variable with this problem."""
        if var.name in self._var_names:
            raise ValueError(f"duplicate variable name: {var.name!r}")
        self._variables.append(var)
        self._var_names.add(var.name)
        return var

    @property
    def variables(self) -> list[Variable]:
        """Registered variables in creation order (copy)."""
        return list(self._variables)

    def variable_by_name(self, name: str) -> Variable:
        """Look up a variable by name (linear scan; debugging helper)."""
        for var in self._variables:
            if var.name == name:
                return var
        raise KeyError(f"no variable named {name!r}")

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self._variables if v.is_integral)

    @property
    def is_mip(self) -> bool:
        """True when any variable is integer/binary."""
        return any(v.is_integral for v in self._variables)

    # -- constraints ------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint, ensuring its variables belong to the model."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (did you write `a == b` "
                "where a plain bool was needed?)"
            )
        for var in constraint.expr.variables():
            if var.name not in self._var_names:
                raise ValueError(
                    f"constraint references unregistered variable {var.name!r}"
                )
        if name:
            constraint = constraint.with_name(name)
        elif not constraint.name:
            constraint = constraint.with_name(f"c{len(self._constraints)}")
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> list[Constraint]:
        """Register several constraints; returns them in order."""
        return [self.add_constraint(c) for c in constraints]

    @property
    def constraints(self) -> list[Constraint]:
        """Registered constraints in insertion order (copy)."""
        return list(self._constraints)

    def truncate_constraints(self, keep: int) -> list[Constraint]:
        """Drop every constraint after the first ``keep``; return the dropped.

        The undo primitive of the incremental refinement engine
        (:mod:`repro.core.incremental`): directives append constraints,
        popping a revision truncates the list back to where it was.
        """
        if keep < 0 or keep > len(self._constraints):
            raise ValueError(
                f"cannot keep {keep} constraints of {len(self._constraints)}"
            )
        removed = self._constraints[keep:]
        del self._constraints[keep:]
        return removed

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- objective ---------------------------------------------------------
    def set_objective(self, expr: LinExpr | Variable | float, sense: str | None = None) -> None:
        """Set the objective expression (and optionally flip the sense)."""
        converted = LinExpr._as_expr(expr)
        if converted is None:
            raise TypeError(f"invalid objective: {expr!r}")
        for var in converted.variables():
            if var.name not in self._var_names:
                raise ValueError(f"objective references unregistered variable {var.name!r}")
        self.objective = converted
        if sense is not None:
            if sense not in (ObjectiveSense.MINIMIZE, ObjectiveSense.MAXIMIZE):
                raise ValueError(f"unknown objective sense: {sense!r}")
            self.sense = sense

    # -- evaluation ----------------------------------------------------------
    def evaluate_objective(self, values: Mapping[Variable, float]) -> float:
        """Objective value under an assignment."""
        return self.objective.evaluate(values)

    def iter_violations(
        self, values: Mapping[Variable, float], tol: float = 1e-6
    ) -> Iterator[tuple[Constraint, float]]:
        """Yield (constraint, violation magnitude) for violated constraints."""
        for con in self._constraints:
            amount = con.violation(values)
            if amount > tol:
                yield con, amount

    def is_feasible(self, values: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check assignment against all constraints and variable bounds."""
        for var in self._variables:
            val = values.get(var)
            if val is None:
                return False
            if var.lb is not None and val < var.lb - tol:
                return False
            if var.ub is not None and val > var.ub + tol:
                return False
            if var.is_integral and abs(val - round(val)) > tol:
                return False
        return not any(True for _ in self.iter_violations(values, tol))

    # -- misc -----------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Model size summary, useful in logs and reports."""
        nonzeros = sum(len(c.expr.terms()) for c in self._constraints)
        return {
            "variables": self.num_variables,
            "integer_variables": self.num_integer_variables,
            "constraints": self.num_constraints,
            "nonzeros": nonzeros,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Problem({self.name!r}, {self.sense}, vars={s['variables']} "
            f"(int={s['integer_variables']}), cons={s['constraints']})"
        )
