"""Shared sparse constraint assembly for every matrix consumer.

Historically each matrix consumer walked ``problem.constraints`` on its
own: :func:`~repro.lp.standard_form.to_matrix_form` built dense
``a_ub``/``a_eq`` blocks, the HiGHS backend kept a private
``_build_sparse``, and the fingerprint layer re-traversed the expression
dicts a third time.  This module is the single assembly path they all
share:

* :func:`iter_constraint_terms` — the canonical row traversal (one
  ``(constraint, [(col, var, coef), ...])`` pair per row, in model
  order).  The fingerprint layer hashes exactly this stream, so the
  solution-cache identity can no longer drift from what the solvers
  actually see.
* :func:`constraint_blocks` — CSR-style triplets plus senses/rhs, the
  form the HiGHS backend wraps into ``scipy.sparse`` and from which
  :func:`~repro.lp.standard_form.to_matrix_form` derives its dense view.
* :class:`CSCMatrix` — a minimal numpy-only compressed-sparse-column
  matrix used by the revised simplex core (column FTRANs and
  ``A^T y`` pricing need column-major access and must work without
  scipy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .expressions import Sense, Variable
from .problem import ObjectiveSense, Problem


def iter_constraint_terms(problem: Problem):
    """Yield ``(constraint, [(col, var, coef), ...])`` per row, in order.

    The canonical traversal of the constraint matrix: columns are the
    variables' registration order, entries follow each expression's term
    order.  Every consumer of the matrix (dense view, scipy wrapper,
    revised core, fingerprints) iterates through here, so they cannot
    disagree about what the model says.
    """
    index = {var: i for i, var in enumerate(problem.variables)}
    for con in problem.constraints:
        yield con, [
            (index[var], var, coef) for var, coef in con.expr.terms().items()
        ]


@dataclass
class ConstraintBlocks:
    """CSR-style triplet view of a problem's constraint matrix.

    Row ``r`` owns the entries ``row_ptr[r]:row_ptr[r+1]`` of
    ``cols``/``data``; ``senses[r]``/``rhs[r]`` carry the relation.
    """

    variables: list[Variable]
    n_rows: int
    n_cols: int
    row_ptr: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    senses: list[Sense]
    rhs: np.ndarray

    def row_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Ranged form ``lower <= A x <= upper`` (what HiGHS consumes)."""
        lower = np.empty(self.n_rows)
        upper = np.empty(self.n_rows)
        for r, sense in enumerate(self.senses):
            if sense is Sense.LE:
                lower[r], upper[r] = -np.inf, self.rhs[r]
            elif sense is Sense.GE:
                lower[r], upper[r] = self.rhs[r], np.inf
            else:
                lower[r] = upper[r] = self.rhs[r]
        return lower, upper

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n_rows, self.n_cols))
        dense[self.rows, self.cols] = self.data
        return dense


def constraint_blocks(problem: Problem) -> ConstraintBlocks:
    """Assemble the constraint matrix sparsely, one traversal, no dense step."""
    variables = problem.variables
    cols: list[int] = []
    data: list[float] = []
    row_ptr: list[int] = [0]
    senses: list[Sense] = []
    rhs: list[float] = []
    for con, terms in iter_constraint_terms(problem):
        for col, _var, coef in terms:
            cols.append(col)
            data.append(coef)
        row_ptr.append(len(cols))
        senses.append(con.sense)
        rhs.append(float(con.rhs))
    n_rows = len(senses)
    row_ptr_arr = np.asarray(row_ptr, dtype=np.int64)
    rows = np.repeat(
        np.arange(n_rows, dtype=np.int64), np.diff(row_ptr_arr)
    )
    return ConstraintBlocks(
        variables=variables,
        n_rows=n_rows,
        n_cols=len(variables),
        row_ptr=row_ptr_arr,
        rows=rows,
        cols=np.asarray(cols, dtype=np.int64),
        data=np.asarray(data, dtype=float),
        senses=senses,
        rhs=np.asarray(rhs, dtype=float),
    )


def objective_arrays(problem: Problem) -> tuple[np.ndarray, float, float]:
    """``(c, c0, sign)`` in minimize space, variables in registration order."""
    variables = problem.variables
    index = {var: i for i, var in enumerate(variables)}
    sign = 1.0 if problem.sense == ObjectiveSense.MINIMIZE else -1.0
    c = np.zeros(len(variables))
    for var, coef in problem.objective.terms().items():
        c[index[var]] = sign * coef
    return c, sign * problem.objective.constant, sign


def bound_arrays(problem: Problem) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(lb, ub, integrality)`` arrays in registration order."""
    variables = problem.variables
    lb = np.array([-np.inf if v.lb is None else v.lb for v in variables])
    ub = np.array([np.inf if v.ub is None else v.ub for v in variables])
    integrality = np.array([1 if v.is_integral else 0 for v in variables])
    return lb, ub, integrality


@dataclass
class CSCMatrix:
    """Minimal numpy-only compressed-sparse-column matrix.

    Just enough for the revised simplex core: column slicing (FTRAN of
    one entering column), ``A @ x`` (rhs assembly) and ``A^T y``
    (pricing), all vectorized.  Not a general sparse library — use
    ``scipy.sparse`` where scipy is guaranteed.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    #: Column id of each stored nonzero (lazily built scatter index).
    _nnz_cols: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        dense = np.asarray(dense, dtype=float)
        m, n = dense.shape
        # nonzero on the transpose walks column-major over ``dense``,
        # which is exactly CSC entry order.
        col_ids, row_ids = np.nonzero(dense.T)
        counts = np.bincount(col_ids, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            shape=(m, n),
            indptr=indptr,
            indices=row_ids.astype(np.int64),
            data=dense[row_ids, col_ids].astype(float),
        )

    @classmethod
    def from_blocks(cls, blocks: ConstraintBlocks) -> "CSCMatrix":
        """Column-major view of CSR-style :class:`ConstraintBlocks`."""
        order = np.lexsort((blocks.rows, blocks.cols))
        counts = np.bincount(blocks.cols, minlength=blocks.n_cols)
        indptr = np.zeros(blocks.n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            shape=(blocks.n_rows, blocks.n_cols),
            indptr=indptr,
            indices=blocks.rows[order],
            data=blocks.data[order],
        )

    @property
    def nnz_cols(self) -> np.ndarray:
        if self._nnz_cols is None:
            self._nnz_cols = np.repeat(
                np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
            )
        return self._nnz_cols

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Stored-entry count per row (array presolve's singleton probe)."""
        return np.bincount(self.indices, minlength=self.shape[0])

    def take_rows(self, keep: np.ndarray) -> "CSCMatrix":
        """Submatrix of the rows where ``keep`` is True, renumbered densely.

        Used by the array presolve to retire redundant/singleton rows
        without ever materializing a dense intermediate.
        """
        keep = np.asarray(keep, dtype=bool)
        new_row = np.cumsum(keep) - 1  # old row id -> new row id
        mask = keep[self.indices]
        counts = np.bincount(self.nnz_cols[mask], minlength=self.shape[1])
        indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSCMatrix(
            shape=(int(keep.sum()), self.shape[1]),
            indptr=indptr,
            indices=new_row[self.indices[mask]].astype(np.int64),
            data=self.data[mask],
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` in O(nnz)."""
        out = np.zeros(self.shape[0])
        if self.data.size:
            np.add.at(out, self.indices, self.data * x[self.nnz_cols])
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``A.T @ y`` in O(nnz)."""
        out = np.zeros(self.shape[1])
        if self.data.size:
            np.add.at(out, self.nnz_cols, self.data * y[self.indices])
        return out

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        if self.data.size:
            dense[self.indices, self.nnz_cols] = self.data
        return dense
