"""Array-level LP solving used by the branch-and-bound search.

Solves ``min c'x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lb <= x <= ub``
with one of three engines:

* ``"builtin"`` (default) — the sparse bounded-variable revised simplex
  (:mod:`repro.lp.revised_simplex`).  Bounds stay implicit, so a
  branch-and-bound node solve is a pure bound-array update against the
  family built once per context: zero per-node row construction.
* ``"tableau"`` — the historical dense full-tableau simplex on a
  standard form with explicit bound rows.  Kept for cross-checking and
  as the revised core's benchmark baseline.
* ``"highs"`` — SciPy's HiGHS wrapper.

The hot path is :class:`RelaxationContext`: one context per B&B tree
assembles its engine's base data **once**, each node solve only varies
the bound arrays, and a parent node's optimal basis (plus, for the
revised core, its nonbasic-status vector) warm-starts the child.

:func:`solve_lp_arrays` remains the one-shot convenience wrapper (it
builds a throwaway context), and :func:`solve_lp_arrays_reference`
preserves the historical per-row Python-loop standardization as the
benchmark/cross-check baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..telemetry import metrics
from .array_presolve import presolve_arrays
from .dual_simplex import solve_bounded_lp_dual
from .revised_simplex import (
    SparseBoundedLP,
    bordered_binv,
    extend_warm_pair,
    solve_bounded_lp,
)
from .simplex import solve_standard_form

#: Basis inverses remembered per context (keyed by the basis itself, so
#: a hit is exact); bounds the pool's memory at ~48 m x m arrays.
_FACTOR_POOL_SIZE = 48


@dataclass
class ArrayLPResult:
    """LP relaxation outcome at the array level.

    The pivot-level counters are only populated by the builtin simplex
    engine; HiGHS reports a flat iteration count.  ``conversion_seconds``
    and ``solve_seconds`` split the wall clock between standard-form
    conversion and actual pivoting.  ``warm_token`` is an opaque value
    that can be passed back to :meth:`RelaxationContext.solve` as
    ``warm`` to warm-start a child node from this solve's basis.
    """

    status: str  # "optimal" | "infeasible" | "unbounded" | "error"
    x: np.ndarray | None
    objective: float
    iterations: int = 0
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    bland_switches: int = 0
    degenerate_pivots: int = 0
    refactorizations: int = 0
    eta_file_length: int = 0
    pricing_passes: int = 0
    bound_flips: int = 0
    dual_pivots: int = 0
    message: str = ""
    conversion_seconds: float = 0.0
    solve_seconds: float = 0.0
    warm_started: bool = False
    warm_token: tuple | None = None
    #: Row duals at optimality (``a_ub`` rows first, then ``a_eq``; the
    #: min-problem convention, ``y_i <= 0`` on binding ``<=`` rows).
    #: Populated by both the builtin revised/dual engines and HiGHS.
    duals: np.ndarray | None = None


def _solve_highs_arrays(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> ArrayLPResult:
    """One linprog/HiGHS call with the library's status mapping."""
    from scipy.optimize import linprog

    start = time.perf_counter()
    res = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=np.column_stack([lb, ub]),
        method="highs",
    )
    elapsed = time.perf_counter() - start
    nit = int(res.nit)
    if res.status == 0:
        duals = None
        ineq = getattr(res, "ineqlin", None)
        eq = getattr(res, "eqlin", None)
        if ineq is not None and eq is not None:
            duals = np.concatenate([
                np.atleast_1d(np.asarray(ineq.marginals, dtype=float))
                if a_ub.size else np.zeros(0),
                np.atleast_1d(np.asarray(eq.marginals, dtype=float))
                if a_eq.size else np.zeros(0),
            ])
        return ArrayLPResult(
            "optimal", res.x, float(res.fun), nit, solve_seconds=elapsed,
            duals=duals,
        )
    if res.status == 2:
        return ArrayLPResult("infeasible", None, np.nan, nit, solve_seconds=elapsed)
    if res.status == 3:
        return ArrayLPResult("unbounded", None, -np.inf, nit, solve_seconds=elapsed)
    if res.status == 1:
        # Same semantics as the builtin engine's pivot budget: an "error"
        # status whose message names the iteration limit.
        return ArrayLPResult(
            "error", None, np.nan, nit,
            message=f"iteration_limit: {res.message}", solve_seconds=elapsed,
        )
    return ArrayLPResult(
        "error", None, np.nan, nit, message=str(res.message), solve_seconds=elapsed
    )


class RelaxationContext:
    """Cached standardization of one bounded-variable LP family.

    A branch-and-bound tree solves many relaxations that share ``c``,
    ``A_ub``/``b_ub`` and ``A_eq``/``b_eq`` and differ only in ``(lb,
    ub)``.

    With the default revised engine (``"builtin"``) the context builds
    one :class:`~repro.lp.revised_simplex.SparseBoundedLP` family up
    front; a node solve passes the node's bound arrays straight into the
    core — bounds are implicit in the simplex, so there is no per-node
    row or matrix construction of any kind, and any parent basis is
    structurally transferable to any child.

    With ``engine="tableau"`` the context keeps the PR-2 dense path: the
    constraint blocks are expanded to plus/minus standard-form columns
    once (vectorized), and each node's matrix — including
    two-entries-per-row variable-bound rows — is assembled from the
    cached blocks.  The plus/minus split follows the **root** bounds, so
    a node that *loosens* a root-finite lower bound back to ``-inf``
    triggers a full restandardization (counted in
    ``structural_rebuilds``); B&B never does this, and the revised
    engine handles it natively.

    Telemetry attributes (``conversion_seconds``, ``solve_seconds``,
    ``node_solves``, ``cache_hits``, ``warm_start_hits``,
    ``warm_start_misses``, ``structural_rebuilds``, plus the revised
    core's ``refactorizations``, ``eta_file_length``,
    ``pricing_passes``, ``bound_flips``) accumulate over the context's
    lifetime; :mod:`repro.telemetry` counters mirror them process-wide.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
        engine: str = "builtin",
        max_iterations: int = 20000,
        node_resolve: str = "dual",
        presolve: bool = True,
        integrality: np.ndarray | None = None,
    ) -> None:
        self.engine = engine
        # "builtin" is an alias for the revised core; the dense tableau
        # stays reachable as "tableau".  Unknown engines are only
        # rejected at solve() time (constructing a context is cheap and
        # side-effect free for them).
        self._mode = {"builtin": "revised", "revised": "revised"}.get(engine, engine)
        self.max_iterations = max_iterations
        self.c = np.asarray(c, dtype=float)
        self.a_ub = np.asarray(a_ub, dtype=float)
        self.b_ub = np.asarray(b_ub, dtype=float)
        self.a_eq = np.asarray(a_eq, dtype=float)
        self.b_eq = np.asarray(b_eq, dtype=float)
        self.root_lb = np.array(lb, dtype=float, copy=True)
        self.root_ub = np.array(ub, dtype=float, copy=True)
        # Only the revised core has a dual path; the tableau stays
        # presolve-free so it remains an untouched cross-check oracle.
        self.node_resolve = node_resolve if self._mode == "revised" else "primal"
        self.presolve_enabled = bool(presolve) and self._mode in ("revised", "highs")
        self._integrality = (
            None if integrality is None else np.asarray(integrality).astype(bool)
        )

        self.conversion_seconds = 0.0
        self.solve_seconds = 0.0
        self.node_solves = 0
        self.cache_hits = 0
        self.warm_start_hits = 0
        self.warm_start_misses = 0
        self.structural_rebuilds = 0
        self.refactorizations = 0
        self.eta_file_length = 0
        self.pricing_passes = 0
        self.bound_flips = 0
        self.dual_entries = 0
        self.dual_pivots = 0
        self.dual_fallbacks = 0
        self.presolve_rows_dropped = 0
        self.presolve_bounds_tightened = 0
        self.presolve_rounds = 0
        self.presolve_reroots = 0
        self.row_extensions = 0
        self.extension_dual_entries = 0
        self._dual_entry_after_extension = False

        self._factor_pool: dict[bytes, np.ndarray] = {}
        self._presolve_infeasible = False
        self._presolve_message = ""
        # Row keep-masks actually applied to the effective arrays; a
        # re-root only has to rebuild the family when these change.
        self._keep_ub: np.ndarray | None = None
        self._keep_eq: np.ndarray | None = None
        # Effective (post-presolve) problem the engines actually solve;
        # aliases of the originals until presolve tightens something.
        self._eff_a_ub, self._eff_b_ub = self.a_ub, self.b_ub
        self._eff_a_eq, self._eff_b_eq = self.a_eq, self.b_eq
        self._eff_lb, self._eff_ub = self.root_lb, self.root_ub
        if self.presolve_enabled:
            self._run_presolve()

        if self._mode == "revised":
            start = time.perf_counter()
            self._family = SparseBoundedLP(
                self.c, self._eff_a_ub, self._eff_b_ub,
                self._eff_a_eq, self._eff_b_eq,
            )
            self.conversion_seconds += time.perf_counter() - start
        elif self._mode == "tableau":
            self._build_base()

    # -- array presolve ----------------------------------------------------

    def _run_presolve(self) -> None:
        """Reduce the root problem; node solves inherit the reductions.

        Dropped rows survive only through the tightened root bounds, so
        :meth:`solve` must intersect every node's bounds with
        ``_eff_lb``/``_eff_ub`` — and :meth:`_reroot` must redo all of
        this if a caller ever loosens bounds past the root box.
        """
        start = time.perf_counter()
        pre = presolve_arrays(
            self.c, self.a_ub, self.b_ub, self.a_eq, self.b_eq,
            self.root_lb, self.root_ub, integrality=self._integrality,
        )
        self.conversion_seconds += time.perf_counter() - start
        self.presolve_rows_dropped += pre.rows_dropped
        self.presolve_bounds_tightened += pre.bounds_tightened
        self.presolve_rounds += pre.rounds
        metrics.increment("relaxation.presolve_rows_dropped", pre.rows_dropped)
        metrics.increment("relaxation.presolve_bounds_tightened", pre.bounds_tightened)
        if pre.infeasible:
            # No reductions are applied: the effective arrays stay the
            # full aliases, so the masks record everything as kept.
            self._presolve_infeasible = True
            self._presolve_message = f"array presolve: {pre.message}"
            self._keep_ub = np.ones(self.b_ub.shape[0], dtype=bool)
            self._keep_eq = np.ones(self.b_eq.shape[0], dtype=bool)
            return
        self._keep_ub = pre.keep_ub
        self._keep_eq = pre.keep_eq
        if not pre.keep_ub.all():
            self._eff_a_ub = self.a_ub[pre.keep_ub]
            self._eff_b_ub = self.b_ub[pre.keep_ub]
        if not pre.keep_eq.all():
            self._eff_a_eq = self.a_eq[pre.keep_eq]
            self._eff_b_eq = self.b_eq[pre.keep_eq]
        self._eff_lb, self._eff_ub = pre.lb, pre.ub

    def _reroot(self, lb: np.ndarray, ub: np.ndarray) -> None:
        """A node loosened bounds past the root box: widen it and redo.

        Branch and bound never loosens, so this is the escape hatch for
        incremental re-solves that relax a directive between runs.  The
        family embeds only the kept rows (bounds stay implicit), so
        outstanding warm tokens and pooled factors survive the re-root
        whenever the fresh presolve keeps the same row set; only a
        changed keep-mask forces a rebuild and invalidates them.
        """
        self.presolve_reroots += 1
        metrics.increment("relaxation.presolve_reroots")
        old_keep_ub, old_keep_eq = self._keep_ub, self._keep_eq
        self.root_lb = np.minimum(self.root_lb, lb)
        self.root_ub = np.maximum(self.root_ub, ub)
        self._presolve_infeasible = False
        self._presolve_message = ""
        self._eff_a_ub, self._eff_b_ub = self.a_ub, self.b_ub
        self._eff_a_eq, self._eff_b_eq = self.a_eq, self.b_eq
        self._eff_lb, self._eff_ub = self.root_lb, self.root_ub
        self._run_presolve()
        same_rows = (
            old_keep_ub is not None
            and np.array_equal(old_keep_ub, self._keep_ub)
            and np.array_equal(old_keep_eq, self._keep_eq)
        )
        if same_rows or self._mode != "revised":
            return
        self.structural_rebuilds += 1
        metrics.increment("relaxation.structural_rebuilds")
        self._factor_pool.clear()
        start = time.perf_counter()
        self._family = SparseBoundedLP(
            self.c, self._eff_a_ub, self._eff_b_ub,
            self._eff_a_eq, self._eff_b_eq,
        )
        self.conversion_seconds += time.perf_counter() - start

    def _remember_factor(self, basis: np.ndarray, binv: np.ndarray) -> None:
        key = np.asarray(basis, dtype=np.int64).tobytes()
        pool = self._factor_pool
        if key not in pool and len(pool) >= _FACTOR_POOL_SIZE:
            pool.pop(next(iter(pool)))
        pool[key] = binv

    # -- in-place structural extension (appended rows, objective swap) -----

    def extend_rows(self, a_new: np.ndarray, b_new: np.ndarray) -> bool:
        """Append ``<=`` rows to the cached family in place.

        The warm-path escape from full context rebuilds: every
        pin/forbid/cap directive reaches the arrays as appended
        inequality rows, and everything already standardized stays
        valid.  Appended rows bypass presolve — a new constraint only
        shrinks the feasible set, so each root reduction derived without
        it still holds — and pooled basis inverses are re-keyed under
        their extended bases via the bordered identity (one ``k × m``
        matmul each) instead of being discarded.  Returns ``False`` when
        this context cannot extend (tableau mode), telling the caller to
        rebuild from scratch.
        """
        if self._mode not in ("revised", "highs"):
            return False
        n = self.c.shape[0]
        a_new = np.asarray(a_new, dtype=float).reshape(-1, n)
        b_new = np.asarray(b_new, dtype=float).reshape(a_new.shape[0])
        k = a_new.shape[0]
        if k == 0:
            return True
        start = time.perf_counter()
        was_alias = self._eff_a_ub is self.a_ub
        self.a_ub = np.vstack([self.a_ub, a_new])
        self.b_ub = np.concatenate([self.b_ub, b_new])
        if self._keep_ub is not None:
            self._keep_ub = np.concatenate([self._keep_ub, np.ones(k, dtype=bool)])
        if was_alias:
            self._eff_a_ub, self._eff_b_ub = self.a_ub, self.b_ub
        else:
            self._eff_a_ub = np.vstack([self._eff_a_ub, a_new])
            self._eff_b_ub = np.concatenate([self._eff_b_ub, b_new])
        self.row_extensions += 1
        metrics.increment("relaxation.row_extensions")
        if self._mode == "revised":
            # The family appends below a_eq so every existing slack id
            # (and with it every outstanding warm token) stays stable.
            m_old = self._family.m
            self._family.append_le_rows(a_new, b_new)
            new_slacks = np.arange(
                self._family.n + m_old,
                self._family.n + self._family.m,
                dtype=np.int64,
            )
            repooled: dict[bytes, np.ndarray] = {}
            for key, binv in self._factor_pool.items():
                basis_old = np.frombuffer(key, dtype=np.int64)
                if basis_old.shape[0] != m_old:
                    continue  # predates an even older structure change
                basis_ext = np.concatenate([basis_old, new_slacks])
                binv_ext = bordered_binv(self._family, basis_ext, binv, m_old)
                if binv_ext is not None:
                    repooled[basis_ext.tobytes()] = binv_ext
            self._factor_pool = repooled
            self._dual_entry_after_extension = True
        if self.presolve_enabled:
            self._presolve_extension()
        self.conversion_seconds += time.perf_counter() - start
        return True

    def _presolve_extension(self) -> None:
        """Re-derive bound tightenings now that rows were appended.

        Appended rows are sound without presolve (they only shrink the
        feasible set), but not *cheap*: a cap row whose implied fixings
        never reach the bound box can leave an extended context
        exploring a tree orders of magnitude larger than the cold
        rebuild it replaced.  Re-running the activity propagation over
        the extended arrays recovers exactly the box a rebuild's
        presolve would start from.  Only the bounds are adopted — rows
        stay embedded even when the fresh pass would drop them, so the
        family, every pooled factor and every bordered warm token stay
        valid (bounds never enter reduced costs).
        """
        pre = presolve_arrays(
            self.c, self.a_ub, self.b_ub, self.a_eq, self.b_eq,
            self.root_lb, self.root_ub, integrality=self._integrality,
        )
        self.presolve_rounds += pre.rounds
        if pre.infeasible:
            self._presolve_infeasible = True
            self._presolve_message = f"array presolve: {pre.message}"
            return
        tightened = int(
            (pre.lb > self._eff_lb + 1e-12).sum()
            + (pre.ub < self._eff_ub - 1e-12).sum()
        )
        if tightened:
            self.presolve_bounds_tightened += tightened
            metrics.increment("relaxation.presolve_bounds_tightened", tightened)
            self._eff_lb = np.maximum(self._eff_lb, pre.lb)
            self._eff_ub = np.minimum(self._eff_ub, pre.ub)

    def reduced_costs(self, duals: np.ndarray | None) -> np.ndarray | None:
        """Structural reduced costs ``c - Aᵀy`` for one solve's row duals.

        ``duals`` follows :attr:`ArrayLPResult.duals`: the *effective*
        (post-presolve) ``a_ub`` rows first, then ``a_eq``.  Returns
        ``None`` when no duals were reported or their length does not
        match the current effective row set (e.g. a token from before a
        re-root).
        """
        if duals is None:
            return None
        duals = np.asarray(duals, dtype=float)
        m_ub = self._eff_b_ub.shape[0]
        m_eq = self._eff_b_eq.shape[0]
        if duals.shape[0] != m_ub + m_eq:
            return None
        d = self.c.copy()
        if m_ub:
            d -= self._eff_a_ub.T @ duals[:m_ub]
        if m_eq:
            d -= self._eff_a_eq.T @ duals[m_ub:]
        return d

    def set_objective_vector(self, c_new: np.ndarray) -> bool:
        """Swap the objective in place; rows, presolve and tokens survive.

        Sound because nothing this context caches depends on ``c``: the
        revised family reads the shared ``c`` array at solve time, HiGHS
        receives it per call, and the array presolve applies no
        objective-driven reductions (``fix_empty_columns`` stays off).
        The tableau's expanded cost columns *are* c-derived, so tableau
        contexts refuse and the caller rebuilds.
        """
        if self._mode not in ("revised", "highs"):
            return False
        c_new = np.asarray(c_new, dtype=float)
        if c_new.shape != self.c.shape:
            return False
        self.c[:] = c_new
        return True

    def extend_warm_token(self, token: tuple | None) -> tuple | None:
        """Extend a pre-append warm token with the new rows' slack basics.

        The extended token is exactly dual feasible when the old one was
        optimal (the duals extend with zeros), which is what routes the
        next node solve through the dual simplex instead of a cold
        primal start.  ``None`` when the token cannot be mapped onto the
        current family.
        """
        if (
            self._mode != "revised"
            or token is None
            or len(token) != 3
            or token[0] != "revised"
        ):
            return None
        pair = extend_warm_pair(self._family, token[1], token[2])
        if pair is None:
            return None
        return ("revised", pair[0], pair[1])

    # -- one-time, fully vectorized base standardization -------------------

    def _build_base(self) -> None:
        start = time.perf_counter()
        n = self.c.shape[0]
        free = np.isneginf(self.root_lb)
        width = np.where(free, 2, 1)
        ends = np.cumsum(width)
        plus = ends - width
        minus = np.full(n, -1, dtype=int)
        minus[free] = plus[free] + 1
        self._free = free
        self._plus = plus
        self._minus = minus
        self._ncols = int(ends[-1]) if n else 0

        self._e_ub = self._expand_block(self.a_ub)
        self._e_eq = self._expand_block(self.a_eq)

        cost = np.zeros(self._ncols)
        cost[plus] = self.c
        cost[minus[free]] = -self.c[free]
        self._cost_struct = cost

        self._root_shift = np.where(free, 0.0, self.root_lb)
        self._b_ub_root = self.b_ub - self.a_ub @ self._root_shift
        self._b_eq_root = self.b_eq - self.a_eq @ self._root_shift
        self.conversion_seconds += time.perf_counter() - start

    def _expand_block(self, block: np.ndarray) -> np.ndarray:
        """Map an (m, n) block onto the plus/minus standard-form columns."""
        out = np.zeros((block.shape[0], self._ncols))
        if block.shape[0]:
            out[:, self._plus] = block
            free = self._free
            if free.any():
                out[:, self._minus[free]] = -block[:, free]
        return out

    # -- per-node assembly: O(changed bounds) rhs + sparse bound rows ------

    def _assemble(
        self, lb: np.ndarray, ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
        free = self._free
        shift = np.where(free, 0.0, lb)
        dshift = shift - self._root_shift
        changed = np.nonzero(dshift)[0]
        b_ub_adj = self._b_ub_root.copy()
        b_eq_adj = self._b_eq_root.copy()
        if changed.size:
            b_ub_adj -= self.a_ub[:, changed] @ dshift[changed]
            b_eq_adj -= self.a_eq[:, changed] @ dshift[changed]

        ub_idx = np.nonzero(~np.isposinf(ub))[0]
        low_idx = np.nonzero(free & ~np.isneginf(lb))[0]
        m_ub, m_eq = self.a_ub.shape[0], self.a_eq.shape[0]
        m_bnd, m_low = ub_idx.size, low_idx.size
        n_le = m_ub + m_bnd + m_low
        m_total = m_ub + m_eq + m_bnd + m_low
        ncols = self._ncols
        # Nodes share the column layout iff they bound the same variables;
        # a matching key is what makes a parent basis transferable.
        key = (ub_idx.tobytes(), low_idx.tobytes())

        a = np.zeros((m_total, ncols + n_le))
        a[:m_ub, :ncols] = self._e_ub
        a[m_ub : m_ub + m_eq, :ncols] = self._e_eq
        r0 = m_ub + m_eq
        rows_u = r0 + np.arange(m_bnd)
        a[rows_u, self._plus[ub_idx]] = 1.0
        split = self._minus[ub_idx] >= 0
        a[rows_u[split], self._minus[ub_idx[split]]] = -1.0
        rows_l = r0 + m_bnd + np.arange(m_low)
        # Lower bound on a root-free variable: x+ - x- >= lb, as a <= row.
        a[rows_l, self._plus[low_idx]] = -1.0
        a[rows_l, self._minus[low_idx]] = 1.0
        le_rows = np.concatenate([np.arange(m_ub), np.arange(r0, m_total)])
        a[le_rows, ncols + np.arange(n_le)] = 1.0

        b = np.concatenate(
            [b_ub_adj, b_eq_adj, ub[ub_idx] - shift[ub_idx], -lb[low_idx]]
        )
        neg = b < 0
        a[neg] *= -1.0
        b[neg] *= -1.0

        cost = np.zeros(ncols + n_le)
        cost[:ncols] = self._cost_struct
        return a, b, cost, key

    # -- revised-core node solve: pure bound-array update ------------------

    def _solve_revised(
        self, lb: np.ndarray, ub: np.ndarray, warm: tuple | None
    ) -> ArrayLPResult:
        """Node solve on the shared sparse family — no row construction.

        The revised core's column layout never varies with the bounds,
        so every parent basis is structurally transferable; the token is
        simply ``("revised", basis, vstat)``.

        With ``node_resolve="dual"`` (the default) a warm-started node
        re-solve goes through the dual simplex: the parent's basis is
        dual feasible for the child by construction, so the walk is a
        handful of pivots (often zero) and infeasible children stop at
        the first Farkas row.  ``dual_lost``/``dual_infeasible`` exits
        fall back to the primal engine on the same warm token.
        """
        self.cache_hits += 1
        metrics.increment("relaxation.cache_hits")
        warm_pair = None
        if warm is not None and len(warm) == 3 and warm[0] == "revised":
            warm_pair = (warm[1], warm[2])
        start = time.perf_counter()
        result = None
        dual_pivots = 0
        if self.node_resolve == "dual" and warm_pair is not None:
            self.dual_entries += 1
            metrics.increment("relaxation.dual_entries")
            if self._dual_entry_after_extension:
                # First dual re-entry after a row append — the bordered
                # warm start actually carried across the extension.
                self._dual_entry_after_extension = False
                self.extension_dual_entries += 1
                metrics.increment("relaxation.extension_dual_entries")
            binv = self._factor_pool.get(
                np.asarray(warm_pair[0], dtype=np.int64).tobytes()
            )
            dres = solve_bounded_lp_dual(
                self._family, lb, ub,
                max_iterations=self.max_iterations, warm=warm_pair, binv=binv,
            )
            if dres.status in ("dual_lost", "dual_infeasible"):
                self.dual_fallbacks += 1
                metrics.increment("relaxation.dual_fallbacks")
            else:
                result = dres
                dual_pivots = dres.dual_pivots
                self.dual_pivots += dual_pivots
                metrics.increment("relaxation.dual_pivots", dual_pivots)
                if dres.binv is not None and dres.basis is not None:
                    self._remember_factor(dres.basis, dres.binv)
        if result is None:
            result = solve_bounded_lp(
                self._family, lb, ub,
                max_iterations=self.max_iterations, warm=warm_pair,
            )
        solve_elapsed = time.perf_counter() - start
        self.solve_seconds += solve_elapsed
        if warm_pair is not None:
            if result.warm_started:
                self.warm_start_hits += 1
                metrics.increment("relaxation.warm_start_hits")
            else:
                self.warm_start_misses += 1
                metrics.increment("relaxation.warm_start_misses")
        self.refactorizations += result.refactorizations
        self.eta_file_length += result.eta_file_length
        self.pricing_passes += result.pricing_passes
        self.bound_flips += result.bound_flips

        status = result.status
        message = result.message
        x = result.x
        objective = result.objective
        if status == "iteration_limit":
            status, message = "error", "iteration_limit"
            x, objective = None, np.nan
        elif status == "error":
            message = message or "numerical breakdown in revised simplex"
        elif status == "optimal":
            objective = float(self.c @ x)
        token = None
        if result.basis is not None:
            token = ("revised", result.basis, result.vstat)
        return ArrayLPResult(
            status, x, objective, result.iterations,
            phase1_iterations=result.phase1_iterations,
            phase2_iterations=result.phase2_iterations,
            bland_switches=result.bland_switches,
            degenerate_pivots=result.degenerate_pivots,
            refactorizations=result.refactorizations,
            eta_file_length=result.eta_file_length,
            pricing_passes=result.pricing_passes,
            bound_flips=result.bound_flips,
            dual_pivots=dual_pivots,
            message=message,
            solve_seconds=solve_elapsed,
            warm_started=result.warm_started,
            warm_token=token,
            duals=result.duals,
        )

    # -- node solves -------------------------------------------------------

    def solve(
        self,
        lb: np.ndarray | None = None,
        ub: np.ndarray | None = None,
        warm: tuple | None = None,
    ) -> ArrayLPResult:
        """Solve one node relaxation for the given bound arrays.

        ``warm`` is the ``warm_token`` of a previous (typically parent)
        solve on this context; it is ignored when the node's bound
        pattern no longer matches the token's column layout.
        """
        lb = self.root_lb if lb is None else np.asarray(lb, dtype=float)
        ub = self.root_ub if ub is None else np.asarray(ub, dtype=float)
        if (lb > ub + 1e-12).any():
            return ArrayLPResult("infeasible", None, np.nan)

        self.node_solves += 1
        metrics.increment("relaxation.node_solves")
        if self.presolve_enabled:
            if (lb < self.root_lb - 1e-9).any() or (ub > self.root_ub + 1e-9).any():
                self._reroot(lb, ub)
            if self._presolve_infeasible:
                return ArrayLPResult(
                    "infeasible", None, np.nan, message=self._presolve_message
                )
            # Reductions hold for any node inside the root box, but the
            # dropped singleton rows live on only as root-bound
            # tightenings — intersecting is mandatory, not an
            # optimization.
            lb = np.maximum(lb, self._eff_lb)
            ub = np.minimum(ub, self._eff_ub)
            crossed = lb > ub
            if crossed.any():
                if (lb[crossed] - ub[crossed]).max() > 1e-7:
                    return ArrayLPResult(
                        "infeasible", None, np.nan,
                        message="node bounds cross presolved root bounds",
                    )
                # Sub-tolerance crossings from implied-bound rounding:
                # collapse instead of declaring infeasible.
                lb = np.minimum(lb, ub)
        if self._mode == "highs":
            result = _solve_highs_arrays(
                self.c, self._eff_a_ub, self._eff_b_ub,
                self._eff_a_eq, self._eff_b_eq, lb, ub,
            )
            self.solve_seconds += result.solve_seconds
            return result
        if self._mode == "revised":
            return self._solve_revised(lb, ub, warm)
        if self._mode != "tableau":
            raise ValueError(f"unknown LP engine: {self.engine!r}")

        if (np.isneginf(lb) & ~self._free).any():
            # A root-finite lower bound was loosened to -inf: the cached
            # plus/minus split cannot represent this node.  Rebuild from
            # scratch (never hit by branch-and-bound, which only tightens).
            self.structural_rebuilds += 1
            metrics.increment("relaxation.structural_rebuilds")
            fresh = RelaxationContext(
                self.c, self.a_ub, self.b_ub, self.a_eq, self.b_eq,
                lb, ub, engine="tableau", max_iterations=self.max_iterations,
            )
            result = fresh.solve()
            self.conversion_seconds += fresh.conversion_seconds
            self.solve_seconds += fresh.solve_seconds
            return result

        self.cache_hits += 1
        metrics.increment("relaxation.cache_hits")
        start = time.perf_counter()
        a, b, cost, key = self._assemble(lb, ub)
        conversion = time.perf_counter() - start
        self.conversion_seconds += conversion

        warm_basis = None
        if warm is not None and warm[0] == key:
            warm_basis = warm[1]
        start = time.perf_counter()
        result = solve_standard_form(
            a, b, cost, max_iterations=self.max_iterations, warm_basis=warm_basis
        )
        solve_elapsed = time.perf_counter() - start
        self.solve_seconds += solve_elapsed
        if warm is not None:
            if result.warm_started:
                self.warm_start_hits += 1
                metrics.increment("relaxation.warm_start_hits")
            else:
                self.warm_start_misses += 1
                metrics.increment("relaxation.warm_start_misses")

        def _with_detail(status: str, x, objective: float, message: str = "") -> ArrayLPResult:
            return ArrayLPResult(
                status, x, objective, result.iterations,
                phase1_iterations=result.phase1_iterations,
                phase2_iterations=result.phase2_iterations,
                bland_switches=result.bland_switches,
                degenerate_pivots=result.degenerate_pivots,
                message=message,
                conversion_seconds=conversion,
                solve_seconds=solve_elapsed,
                warm_started=result.warm_started,
                warm_token=(key, result.basis) if result.basis is not None else None,
            )

        if result.status == "iteration_limit":
            return _with_detail("error", None, np.nan, message="iteration_limit")
        if result.status != "optimal":
            return _with_detail(result.status, None,
                                -np.inf if result.status == "unbounded" else np.nan)
        y = result.x
        x = y[self._plus].copy()
        free = self._free
        if free.any():
            x[free] -= y[self._minus[free]]
        x += np.where(free, 0.0, lb)
        return _with_detail("optimal", x, float(self.c @ x))


def solve_lp_arrays(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    engine: str = "highs",
    max_iterations: int = 20000,
    presolve: bool = True,
) -> ArrayLPResult:
    """Solve the bounded-variable LP with the requested engine.

    One-shot convenience wrapper over :class:`RelaxationContext`; callers
    with many same-structure solves should hold a context instead.
    Infeasible bound pairs (``lb > ub``) short-circuit to infeasible —
    branch-and-bound produces those routinely when fixing binaries.
    """
    if (lb > ub + 1e-12).any():
        return ArrayLPResult("infeasible", None, np.nan)
    context = RelaxationContext(
        c, a_ub, b_ub, a_eq, b_eq, lb, ub,
        engine=engine, max_iterations=max_iterations, presolve=presolve,
    )
    return context.solve()


def _standardize_arrays_reference(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Historical per-row-loop standardization (reference implementation).

    Kept verbatim (minus the never-used objective constant) as the
    cross-check oracle for :class:`RelaxationContext` and as the
    "uncached" baseline of the node-cache micro-benchmark.  Returns
    ``(a, b, cost, plus_cols, minus_cols)`` with original ``x[i] =
    y[plus_cols[i]] - y[minus_cols[i]] + shift[i]`` (``minus_cols[i]`` is
    -1 for non-free variables).
    """
    n = c.shape[0]
    plus = np.zeros(n, dtype=int)
    minus = np.full(n, -1, dtype=int)
    shift = np.zeros(n)
    ncols = 0
    for i in range(n):
        plus[i] = ncols
        ncols += 1
        if np.isneginf(lb[i]):
            minus[i] = ncols
            ncols += 1
        else:
            shift[i] = lb[i]

    rows: list[tuple[np.ndarray, str, float]] = []

    def expand(row: np.ndarray, rhs: float) -> tuple[np.ndarray, float]:
        out = np.zeros(ncols)
        adj = rhs
        for i in range(n):
            coef = row[i]
            if coef == 0.0:
                continue
            out[plus[i]] += coef
            if minus[i] >= 0:
                out[minus[i]] -= coef
            adj -= coef * shift[i]
        return out, adj

    for r in range(a_ub.shape[0]):
        row, adj = expand(a_ub[r], float(b_ub[r]))
        rows.append((row, "le", adj))
    for r in range(a_eq.shape[0]):
        row, adj = expand(a_eq[r], float(b_eq[r]))
        rows.append((row, "eq", adj))
    for i in range(n):
        if not np.isposinf(ub[i]):
            row = np.zeros(ncols)
            row[plus[i]] = 1.0
            if minus[i] >= 0:
                row[minus[i]] = -1.0
            rows.append((row, "le", float(ub[i]) - shift[i]))

    nslack = sum(1 for _, sense, _ in rows if sense == "le")
    total = ncols + nslack
    a = np.zeros((len(rows), total))
    b = np.zeros(len(rows))
    slack = ncols
    for r, (row, sense, rhs) in enumerate(rows):
        a[r, :ncols] = row
        b[r] = rhs
        if sense == "le":
            a[r, slack] = 1.0
            slack += 1
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    cost = np.zeros(total)
    for i in range(n):
        cost[plus[i]] += c[i]
        if minus[i] >= 0:
            cost[minus[i]] -= c[i]
    return a, b, cost, plus, minus


def solve_lp_arrays_reference(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: int = 20000,
) -> ArrayLPResult:
    """The pre-cache builtin node solve: full loop standardization + cold start.

    Benchmark baseline only — production callers use
    :class:`RelaxationContext` / :func:`solve_lp_arrays`.
    """
    if (lb > ub + 1e-12).any():
        return ArrayLPResult("infeasible", None, np.nan)
    start = time.perf_counter()
    a, b, cost, plus, minus = _standardize_arrays_reference(
        c, a_ub, b_ub, a_eq, b_eq, lb, ub
    )
    conversion = time.perf_counter() - start
    start = time.perf_counter()
    result = solve_standard_form(a, b, cost, max_iterations=max_iterations)
    solve_elapsed = time.perf_counter() - start
    if result.status != "optimal":
        status = "error" if result.status == "iteration_limit" else result.status
        return ArrayLPResult(
            status, None, -np.inf if status == "unbounded" else np.nan,
            result.iterations,
            message="iteration_limit" if result.status == "iteration_limit" else "",
            conversion_seconds=conversion, solve_seconds=solve_elapsed,
        )
    y = result.x
    n = c.shape[0]
    x = np.empty(n)
    for i in range(n):
        val = y[plus[i]]
        if minus[i] >= 0:
            val -= y[minus[i]]
        x[i] = val + (lb[i] if not np.isneginf(lb[i]) else 0.0)
    return ArrayLPResult(
        "optimal", x, float(c @ x), result.iterations,
        phase1_iterations=result.phase1_iterations,
        phase2_iterations=result.phase2_iterations,
        bland_switches=result.bland_switches,
        degenerate_pivots=result.degenerate_pivots,
        conversion_seconds=conversion, solve_seconds=solve_elapsed,
    )
