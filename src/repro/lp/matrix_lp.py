"""Array-level LP solving used by the branch-and-bound search.

Solves ``min c'x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lb <= x <= ub``
with either the from-scratch simplex (``engine="builtin"``) or SciPy's
HiGHS (``engine="highs"``).  Branch-and-bound nodes differ only in the
bound arrays, so this is the natural interface for node relaxations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .simplex import solve_standard_form


@dataclass
class ArrayLPResult:
    """LP relaxation outcome at the array level.

    The pivot-level counters are only populated by the builtin simplex
    engine; HiGHS reports a flat iteration count.
    """

    status: str  # "optimal" | "infeasible" | "unbounded" | "error"
    x: np.ndarray | None
    objective: float
    iterations: int = 0
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    bland_switches: int = 0
    degenerate_pivots: int = 0


def _standardize_arrays(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, np.ndarray, np.ndarray]:
    """Convert bounded-variable form to ``min c'y, Ay = b, y >= 0``.

    Returns ``(a, b, cost, c0, plus_cols, minus_cols)`` where original
    ``x[i] = y[plus_cols[i]] - y[minus_cols[i]] + shift[i]`` (minus_cols[i]
    is -1 for non-free variables; the shift is folded into ``c0`` and rhs).
    """
    n = c.shape[0]
    plus = np.zeros(n, dtype=int)
    minus = np.full(n, -1, dtype=int)
    shift = np.zeros(n)
    ncols = 0
    for i in range(n):
        plus[i] = ncols
        ncols += 1
        if np.isneginf(lb[i]):
            minus[i] = ncols
            ncols += 1
        else:
            shift[i] = lb[i]

    rows: list[tuple[np.ndarray, str, float]] = []

    def expand(row: np.ndarray, rhs: float) -> tuple[np.ndarray, float]:
        out = np.zeros(ncols)
        adj = rhs
        for i in range(n):
            coef = row[i]
            if coef == 0.0:
                continue
            out[plus[i]] += coef
            if minus[i] >= 0:
                out[minus[i]] -= coef
            adj -= coef * shift[i]
        return out, adj

    for r in range(a_ub.shape[0]):
        row, adj = expand(a_ub[r], float(b_ub[r]))
        rows.append((row, "le", adj))
    for r in range(a_eq.shape[0]):
        row, adj = expand(a_eq[r], float(b_eq[r]))
        rows.append((row, "eq", adj))
    for i in range(n):
        if not np.isposinf(ub[i]):
            row = np.zeros(ncols)
            row[plus[i]] = 1.0
            if minus[i] >= 0:
                row[minus[i]] = -1.0
            rows.append((row, "le", float(ub[i]) - shift[i]))

    nslack = sum(1 for _, sense, _ in rows if sense == "le")
    total = ncols + nslack
    a = np.zeros((len(rows), total))
    b = np.zeros(len(rows))
    slack = ncols
    for r, (row, sense, rhs) in enumerate(rows):
        a[r, :ncols] = row
        b[r] = rhs
        if sense == "le":
            a[r, slack] = 1.0
            slack += 1
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    cost = np.zeros(total)
    c0 = float(c @ shift)
    for i in range(n):
        cost[plus[i]] += c[i]
        if minus[i] >= 0:
            cost[minus[i]] -= c[i]
    return a, b, cost, c0, plus, minus


def solve_lp_arrays(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    engine: str = "highs",
    max_iterations: int = 20000,
) -> ArrayLPResult:
    """Solve the bounded-variable LP with the requested engine.

    Infeasible bound pairs (``lb > ub``) short-circuit to infeasible —
    branch-and-bound produces those routinely when fixing binaries.
    """
    if (lb > ub + 1e-12).any():
        return ArrayLPResult("infeasible", None, np.nan)

    if engine == "highs":
        from scipy.optimize import linprog

        res = linprog(
            c,
            A_ub=a_ub if a_ub.size else None,
            b_ub=b_ub if b_ub.size else None,
            A_eq=a_eq if a_eq.size else None,
            b_eq=b_eq if b_eq.size else None,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )
        if res.status == 0:
            return ArrayLPResult("optimal", res.x, float(res.fun), int(res.nit))
        if res.status == 2:
            return ArrayLPResult("infeasible", None, np.nan, int(res.nit))
        if res.status == 3:
            return ArrayLPResult("unbounded", None, -np.inf, int(res.nit))
        return ArrayLPResult("error", None, np.nan, int(res.nit))

    if engine == "builtin":
        a, b, cost, c0, plus, minus = _standardize_arrays(
            c, a_ub, b_ub, a_eq, b_eq, lb, ub
        )
        result = solve_standard_form(a, b, cost, max_iterations=max_iterations)

        def _with_detail(status: str, x, objective: float) -> ArrayLPResult:
            return ArrayLPResult(
                status, x, objective, result.iterations,
                phase1_iterations=result.phase1_iterations,
                phase2_iterations=result.phase2_iterations,
                bland_switches=result.bland_switches,
                degenerate_pivots=result.degenerate_pivots,
            )

        if result.status != "optimal":
            status = "error" if result.status == "iteration_limit" else result.status
            return _with_detail(status, None, np.nan)
        y = result.x
        n = c.shape[0]
        x = np.empty(n)
        for i in range(n):
            val = y[plus[i]]
            if minus[i] >= 0:
                val -= y[minus[i]]
            x[i] = val + (lb[i] if not np.isneginf(lb[i]) else 0.0)
        return _with_detail("optimal", x, float(c @ x))

    raise ValueError(f"unknown LP engine: {engine!r}")
