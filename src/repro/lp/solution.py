"""Solver result types shared by every backend."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from ..telemetry import SolveStats
from .expressions import Variable


class SolveStatus(Enum):
    """Outcome of a solve attempt."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether variable values may be read from the solution."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Result of solving a :class:`~repro.lp.problem.Problem`.

    Attributes
    ----------
    status:
        Solve outcome; check :attr:`SolveStatus.has_solution` before
        reading values.
    objective:
        Objective value at the returned point (``nan`` when no solution).
    values:
        Variable assignment.  Empty when no solution exists.
    solver:
        Name of the backend that produced the result.
    iterations:
        Backend-specific work counter (simplex pivots, B&B nodes, ...).
    message:
        Free-form diagnostic from the backend.
    stats:
        Structured :class:`repro.telemetry.SolveStats` describing the
        search (iterations split, nodes, bounds, presolve reductions);
        ``None`` only for backends that predate the telemetry layer.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: dict[Variable, float] = field(default_factory=dict)
    solver: str = ""
    iterations: int = 0
    message: str = ""
    stats: SolveStats | None = None

    def value(self, var: Variable, default: float | None = None) -> float:
        """Value of ``var`` in this solution.

        Variables that were eliminated or never entered the model fall
        back to ``default`` when given, else raise ``KeyError``.
        """
        if var in self.values:
            return self.values[var]
        if default is not None:
            return default
        raise KeyError(f"variable {var.name!r} not present in solution")

    def as_name_dict(self) -> dict[str, float]:
        """Return values keyed by variable name (for reports / JSON)."""
        return {var.name: val for var, val in self.values.items()}

    def restrict(self, variables: Mapping[str, Variable]) -> dict[str, float]:
        """Extract values for a named subset of variables."""
        return {name: self.value(var, 0.0) for name, var in variables.items()}
