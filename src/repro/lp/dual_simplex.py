"""Bounded-variable dual simplex for near-free branch-and-bound re-solves.

A branch-and-bound child differs from its parent by exactly one bound.
The parent's optimal basis therefore stays **dual feasible** for the
child (reduced costs depend on the basis and costs only, not on
bounds), while at most the branched variable's basic value slips
outside its new bound.  The dual simplex starts from precisely that
state: it walks dual-feasible bases, driving out primal infeasibility
one leaving row at a time — typically a handful of pivots where the
primal engine would re-prove feasibility with a 40–100-pivot phase 1.
Infeasible nodes are cheapest of all: the first unrepairable row is a
Farkas certificate and the solve stops immediately.

Shared machinery: this solver subclasses the primal
:class:`~repro.lp.revised_simplex._Solver`, reusing the CSC column
FTRAN/BTRAN kernel, the LU factorization + product-form eta file, and
the warm-start validation.  What it adds:

* **Devex row pricing.**  The leaving row maximizes
  ``violation^2 / w`` over reference weights updated Forrest–Goldfarb
  style from each pivot column; a stall watchdog falls back to
  Bland-like lowest-index selection exactly as the primal engine does.
* **Bound-flipping ratio test.**  Breakpoints are walked in dual-step
  order; boxed nonbasics whose breakpoint is passed flip to their
  opposite bound (one aggregated FTRAN repairs ``x_B``), shrinking the
  leaving row's violation before the blocking column finally pivots in.
  Exhausting every breakpoint with violation left over proves the LP
  infeasible.
* **Warm-only entry.**  Without a valid ``(basis, vstat)`` token the
  solver refuses (``dual_lost``) and the caller uses the primal engine;
  reduced-cost sign violations at entry are repaired by bound flips
  when the opposite bound is finite, else the solve reports
  ``dual_infeasible`` and again falls back.  An optional cached basis
  inverse (keyed by the basis, see the caller's factor pool) skips the
  O(m^3) entry refactorization entirely.

Fixed columns (``lb == ub`` — equality slacks and branch-fixed
binaries) carry unconstrained reduced costs; they are excluded from the
dual feasibility test and from the ratio test, which would otherwise
stall on their meaningless sign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .revised_simplex import (
    AT_LOWER,
    AT_UPPER,
    BASIC,
    FEAS_TOL,
    FREE,
    PIV_TOL,
    REFACTOR_INTERVAL,
    RevisedResult,
    SparseBoundedLP,
    _Solver,
)

#: Reduced-cost sign slack tolerated at warm entry (looser than DJ_TOL:
#: the parent stopped pricing at DJ_TOL, so its token can carry up to
#: that much noise per column plus factorization drift).
ENTRY_DUAL_TOL = 1e-7

#: Minimum |row element| for a column to join the dual ratio test.
ZERO_TOL = 1e-9

#: Columns with a tighter gap than this count as fixed (unconstrained
#: reduced-cost sign; never enter, never flip).
FIXED_TOL = 1e-12


@dataclass
class DualResult(RevisedResult):
    """Revised-simplex result plus the dual walk's own counters."""

    dual_pivots: int = 0
    #: Basis inverse matching ``basis`` (optimal exits only — the
    #: verification refactor leaves the eta file empty, so this is
    #: exact).  Callers may seed the next warm solve with it.
    binv: np.ndarray | None = None


class _DualSolver(_Solver):
    """One dual-simplex solve over a :class:`SparseBoundedLP` member."""

    def __init__(
        self,
        lp: SparseBoundedLP,
        lb: np.ndarray,
        ub: np.ndarray,
        max_iterations: int,
        warm: tuple[np.ndarray, np.ndarray] | None,
        binv: np.ndarray | None = None,
    ) -> None:
        super().__init__(lp, lb, ub, max_iterations, warm)
        self._binv_hint = binv
        self.dual_pivots = 0

    # -- entry -------------------------------------------------------------

    def _warm_start_dual(self) -> bool:
        """Adopt the warm token; use the cached inverse when offered."""
        basis, vstat = self.warm
        basis = np.asarray(basis, dtype=np.int64)
        vstat = np.asarray(vstat, dtype=np.int8)
        if basis.shape != (self.m,) or vstat.shape != (self.N,):
            return False
        if (basis < 0).any() or (basis >= self.N).any():
            return False
        if np.unique(basis).size != self.m:
            return False
        self.basis = basis.copy()
        self.vstat = vstat.copy()
        self.vstat[self.basis] = BASIC
        self.etas = []
        hint = self._binv_hint
        if hint is not None and hint.shape == (self.m, self.m):
            # The basis fully determines B, so a pool hit is exact; it is
            # only ever *replaced* (never mutated) by a refactorization.
            self.binv = hint
        elif not self._refactor():
            return False
        self._normalize_nonbasic()
        self._compute_xb()
        return True

    def _reduced_costs(self) -> np.ndarray:
        y = self._btran(self._cvec[self.basis])
        d = self._reduced_block(y, self._cvec, 0, self.N)
        d[self.basis] = 0.0
        return d

    def _fixed_mask(self) -> np.ndarray:
        return (self.upper - self.lower) <= FIXED_TOL

    def _dual_normalize(self) -> bool:
        """Repair entry reduced-cost signs by bound flips; False if stuck."""
        d = self._reduced_costs()
        nb = self.vstat != BASIC
        fixed = self._fixed_mask()
        low_bad = nb & ~fixed & (self.vstat == AT_LOWER) & (d < -ENTRY_DUAL_TOL)
        up_bad = nb & ~fixed & (self.vstat == AT_UPPER) & (d > ENTRY_DUAL_TOL)
        flip_up = low_bad & np.isfinite(self.upper)
        flip_dn = up_bad & np.isfinite(self.lower)
        if (low_bad & ~flip_up).any() or (up_bad & ~flip_dn).any():
            return False
        if (nb & (self.vstat == FREE) & (np.abs(d) > ENTRY_DUAL_TOL)).any():
            return False
        if flip_up.any() or flip_dn.any():
            self.vstat[flip_up] = AT_UPPER
            self.vstat[flip_dn] = AT_LOWER
            self.bound_flips += int(flip_up.sum() + flip_dn.sum())
            self._normalize_nonbasic()
            self._compute_xb()
        return True

    def _dual_violation(self) -> float:
        d = self._reduced_costs()
        nb = self.vstat != BASIC
        fixed = self._fixed_mask()
        live = nb & ~fixed
        worst = 0.0
        low = live & (self.vstat == AT_LOWER)
        if low.any():
            worst = max(worst, float(np.maximum(-d[low], 0.0).max()))
        up = live & (self.vstat == AT_UPPER)
        if up.any():
            worst = max(worst, float(np.maximum(d[up], 0.0).max()))
        fr = nb & (self.vstat == FREE)
        if fr.any():
            worst = max(worst, float(np.abs(d[fr]).max()))
        return worst

    # -- the dual walk -----------------------------------------------------

    def _pivot_row(self, alpha_row: np.ndarray) -> np.ndarray:
        """Row ``rho @ A`` over all columns (structural then slack)."""
        abar = np.empty(self.N)
        abar[: self.n] = self.lp.a.rmatvec(alpha_row)
        abar[self.n :] = alpha_row
        return abar

    def _apply_flips(self, flips: list[int]) -> None:
        """Flip boxed nonbasics to their opposite bound; repair x_B once."""
        dx = np.zeros(self.N)
        for j in flips:
            rng = self.upper[j] - self.lower[j]
            if self.vstat[j] == AT_LOWER:
                dx[j] = rng
                self.vstat[j] = AT_UPPER
                self.xval[j] = self.upper[j]
            else:
                dx[j] = -rng
                self.vstat[j] = AT_LOWER
                self.xval[j] = self.lower[j]
        rhs = self.lp.a.matvec(dx[: self.n]) + dx[self.n :]
        self.xB -= self._ftran(rhs)
        self.bound_flips += len(flips)

    def _dual_loop(self) -> str:
        m = self.m
        w = np.ones(m)  # devex reference weights, one per row
        stall = 0
        bland = False
        while True:
            lB = self.lower[self.basis]
            uB = self.upper[self.basis]
            below = lB - self.xB
            above = self.xB - uB
            viol = np.maximum(below, above)
            if float(viol.max(initial=0.0)) <= FEAS_TOL:
                return "optimal"
            if self.iterations >= self.max_iterations:
                return "iteration_limit"
            cand = viol > FEAS_TOL
            if bland:
                r = int(np.flatnonzero(cand)[0])
            else:
                score = np.where(cand, viol * viol / w, -1.0)
                r = int(np.argmax(score))
            is_above = above[r] >= below[r]
            sigma = 1.0 if is_above else -1.0
            p = int(self.basis[r])
            bound_p = self.upper[p] if is_above else self.lower[p]

            e = np.zeros(m)
            e[r] = 1.0
            rho = self._btran(e)
            atil = sigma * self._pivot_row(rho)
            d = self._reduced_costs()
            self.pricing_passes += 1

            nbm = self.vstat != BASIC
            fixed = self._fixed_mask()
            elig = (
                nbm
                & ~fixed
                & (
                    ((self.vstat == AT_LOWER) & (atil > ZERO_TOL))
                    | ((self.vstat == AT_UPPER) & (atil < -ZERO_TOL))
                    | ((self.vstat == FREE) & (np.abs(atil) > ZERO_TOL))
                )
            )
            idx = np.flatnonzero(elig)
            if idx.size == 0:
                # No column can repair this row: Farkas certificate.
                return "infeasible"
            theta = d[idx] / atil[idx]
            np.maximum(theta, 0.0, out=theta)
            order = np.argsort(theta, kind="stable")

            flips: list[int] = []
            if bland:
                tmin = float(theta[order[0]])
                q = int(idx[theta <= tmin + 1e-12].min())
                tq = tmin
            else:
                # Bound-flipping walk: pass breakpoints while the leaving
                # row's violation (the dual slope) survives the flip.
                slope = float(viol[r])
                kq = -1
                for k in order:
                    j = int(idx[k])
                    drop = abs(atil[j]) * (self.upper[j] - self.lower[j])
                    if not np.isfinite(drop) or slope - drop <= 1e-12:
                        kq = int(k)
                        break
                    flips.append(j)
                    slope -= drop
                if kq < 0:
                    # Every breakpoint flipped, violation remains: the
                    # dual is unbounded along this row, so no primal
                    # feasible point exists.
                    return "infeasible"
                tq = float(theta[kq])
                # Among blocking candidates tied at t_q, take the largest
                # pivot element (Harris-style stability tie-break).
                q = int(idx[kq])
                best = abs(atil[q])
                started = False
                for k in order:
                    if int(k) == kq:
                        started = True
                        continue
                    if not started:
                        continue
                    if float(theta[k]) > tq + 1e-9:
                        break
                    j = int(idx[k])
                    if abs(atil[j]) > best:
                        best = abs(atil[j])
                        q = j

            if flips:
                self._apply_flips(flips)

            alpha = self._ftran_col(q)
            ar = float(alpha[r])
            if abs(ar) < PIV_TOL:
                if not self._refactor():
                    return "error"
                self._compute_xb()
                alpha = self._ftran_col(q)
                ar = float(alpha[r])
                if abs(ar) < PIV_TOL:
                    return "dual_lost"

            delta_q = (float(self.xB[r]) - bound_p) / ar
            xq = 0.0 if self.vstat[q] == FREE else float(self.xval[q])
            self.xB -= delta_q * alpha
            self.xB[r] = xq + delta_q
            self.vstat[p] = AT_UPPER if is_above else AT_LOWER
            self.xval[p] = bound_p
            self.vstat[q] = BASIC
            self.basis[r] = q
            g = -alpha / ar
            g[r] = 1.0 / ar - 1.0
            self.etas.append((r, g))
            if len(self.etas) >= REFACTOR_INTERVAL:
                if not self._refactor():
                    return "error"
                self._compute_xb()

            # Forrest–Goldfarb devex update over the pivot column.
            ref = w[r] / (ar * ar)
            np.maximum(w, alpha * alpha * ref, out=w)
            w[r] = max(1.0, ref)

            self.dual_pivots += 1
            self.iterations += 1
            if tq <= 1e-12:
                self.degenerate_pivots += 1
                stall += 1
                if stall > 2 * m and not bland:
                    bland = True
                    self.bland_switches += 1
            else:
                stall = 0
                bland = False

    # -- driver ------------------------------------------------------------

    def solve(self) -> DualResult:
        if (self.lower > self.upper + FEAS_TOL).any():
            return self._dual_result("infeasible")
        if self.m == 0 or self.warm is None:
            # Nothing for a dual walk to stand on; the caller's primal
            # path handles both cases.
            return self._dual_result("dual_lost")
        if not self._warm_start_dual():
            return self._dual_result("dual_lost")
        self.warm_started = True
        if not self._dual_normalize():
            return self._dual_result("dual_infeasible")
        for _attempt in range(4):
            status = self._dual_loop()
            if status != "optimal":
                return self._dual_result(status)
            # Accuracy gate, mirroring the primal driver: fold the eta
            # file into a fresh factorization and re-check both
            # feasibilities before trusting the optimum.
            if self.etas:
                if not self._refactor():
                    return self._dual_result("error")
                self._compute_xb()
            viol = np.maximum(
                self.lower[self.basis] - self.xB, self.xB - self.upper[self.basis]
            )
            if float(viol.max(initial=0.0)) <= 1e-6 and self._dual_violation() <= 1e-6:
                return self._dual_result("optimal")
        return self._dual_result("dual_lost")

    def _dual_result(self, status: str) -> DualResult:
        x = None
        basis = vstat = binv = duals = None
        objective = np.nan
        if status == "optimal":
            self.xval[self.basis] = self.xB
            x = self.xval[: self.n].copy()
            np.clip(x, self.lower[: self.n], self.upper[: self.n], out=x)
            objective = float(self.lp.c @ x)
            basis = self.basis.copy()
            vstat = self.vstat.copy()
            duals = self._btran(self._cvec[self.basis]) if self.m else np.zeros(0)
            if not self.etas:
                binv = self.binv
        return DualResult(
            status=status,
            x=x,
            objective=objective,
            iterations=self.iterations,
            phase2_iterations=self.dual_pivots,
            bland_switches=self.bland_switches,
            degenerate_pivots=self.degenerate_pivots,
            refactorizations=self.refactorizations,
            eta_file_length=self.eta_file_length,
            pricing_passes=self.pricing_passes,
            bound_flips=self.bound_flips,
            basis=basis,
            vstat=vstat,
            duals=duals,
            warm_started=self.warm_started,
            dual_pivots=self.dual_pivots,
            binv=binv,
        )


def solve_bounded_lp_dual(
    lp: SparseBoundedLP,
    lb: np.ndarray,
    ub: np.ndarray,
    max_iterations: int = 20000,
    warm: tuple[np.ndarray, np.ndarray] | None = None,
    binv: np.ndarray | None = None,
) -> DualResult:
    """Dual-simplex solve of one LP-family member from a warm token.

    Statuses beyond the primal set: ``dual_lost`` (no usable warm token
    or numerical breakdown mid-walk) and ``dual_infeasible`` (the token
    is not reduced-cost feasible and bound flips cannot repair it).
    Both mean "use the primal engine"; neither is a verdict on the LP.
    """
    return _DualSolver(lp, lb, ub, max_iterations, warm, binv=binv).solve()
