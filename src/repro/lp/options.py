"""Typed solver options: one validated record instead of scattered kwargs.

Historically every backend took ``**options`` and silently dropped the
flags it did not understand (``mip_rel_gap`` on ``branch_bound``,
``cover_cut_rounds`` on ``simplex``, ...).  :class:`SolveOptions` is the
replacement: a frozen dataclass carrying every knob any backend accepts,
plus a per-backend capability table so :func:`SolveOptions.validate_for`
can reject an option the chosen backend would ignore.

The old keyword style still works through :func:`options_from_kwargs`
(used by :func:`repro.lp.solve`'s back-compat shim); it emits a
``DeprecationWarning`` and maps onto the typed record.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, fields
from typing import Mapping


@dataclass(frozen=True)
class SolveOptions:
    """Options for one :func:`repro.lp.solve` call.

    Attributes
    ----------
    time_limit:
        Wall-clock budget in seconds (``highs``, ``branch_bound``).
    mip_rel_gap:
        Relative optimality gap at which the MIP search may stop
        (``highs``).
    node_limit:
        Branch-and-bound node budget (``branch_bound``).
    gap_tolerance:
        Absolute incumbent/bound gap at which ``branch_bound`` declares
        optimality.
    max_iterations:
        Simplex pivot budget per LP (``simplex``, and the builtin
        relaxation engine of ``branch_bound``/``rounding``).
    relaxation_engine:
        Which LP engine solves node relaxations (``branch_bound``,
        ``rounding``): ``"highs"``, ``"builtin"`` (the sparse revised
        simplex; ``"revised"`` is an explicit alias), or ``"tableau"``
        (the historical dense full-tableau simplex, kept for
        cross-checking).
    cover_cut_rounds:
        Rounds of root knapsack cover cuts (``branch_bound``).
    node_resolve:
        How warm-started branch-and-bound node re-solves run on the
        builtin engine: ``"dual"`` (default) enters the dual simplex
        from the parent basis, ``"primal"`` keeps the primal
        phase-1/phase-2 path for every node.
    presolve:
        Array-level presolve of the root relaxation (``branch_bound``,
        ``rounding``): singleton/redundant rows are dropped and bounds
        tightened once per tree.  ``True`` by default; set ``False`` to
        solve the raw arrays.
    warm_start:
        Variable-name → value hint from a previous, closely related
        solve.  ``branch_bound`` seeds its incumbent from it when the
        point is feasible; ``highs`` accepts but ignores it (SciPy's
        ``milp`` exposes no solution hint) — accepted everywhere so an
        incremental caller need not special-case backends.
    """

    time_limit: float | None = None
    mip_rel_gap: float | None = None
    node_limit: int = 200000
    gap_tolerance: float = 1e-6
    max_iterations: int = 20000
    relaxation_engine: str = "highs"
    cover_cut_rounds: int = 0
    node_resolve: str = "dual"
    presolve: bool = True
    warm_start: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError("time_limit must be positive")
        if self.mip_rel_gap is not None and self.mip_rel_gap < 0:
            raise ValueError("mip_rel_gap cannot be negative")
        if self.node_limit <= 0:
            raise ValueError("node_limit must be positive")
        if self.gap_tolerance < 0:
            raise ValueError("gap_tolerance cannot be negative")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.relaxation_engine not in ("highs", "builtin", "revised", "tableau"):
            raise ValueError(
                f"unknown relaxation engine {self.relaxation_engine!r}; "
                "expected 'highs', 'builtin', 'revised' or 'tableau'"
            )
        if self.cover_cut_rounds < 0:
            raise ValueError("cover_cut_rounds cannot be negative")
        if self.node_resolve not in ("dual", "primal"):
            raise ValueError(
                f"unknown node_resolve {self.node_resolve!r}; "
                "expected 'dual' or 'primal'"
            )

    # -- per-backend validation -------------------------------------------

    def non_default_fields(self) -> dict[str, object]:
        """Fields that differ from their defaults (what the caller set)."""
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    def validate_for(self, backend: str) -> "SolveOptions":
        """Raise ``ValueError`` if a set option is meaningless for ``backend``.

        Unknown backends (externally registered) accept everything — the
        capability table only covers the built-in solvers.  Returns
        ``self`` so calls chain.
        """
        supported = BACKEND_OPTION_FIELDS.get(backend)
        if supported is None:
            return self
        rejected = [
            name for name in self.non_default_fields() if name not in supported
        ]
        if rejected:
            raise ValueError(
                f"option(s) {', '.join(sorted(rejected))} are not supported by "
                f"backend {backend!r}; supported options: "
                f"{', '.join(sorted(supported))}"
            )
        return self

    def replace(self, **changes) -> "SolveOptions":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def as_kwargs(self) -> dict[str, object]:
        """Non-default fields as a keyword dict (for custom backends)."""
        return self.non_default_fields()


#: Which :class:`SolveOptions` fields each built-in backend honours.
#: ``auto`` accepts the union of its delegates; when it falls back from
#: HiGHS to the builtin stack, HiGHS-only fields are dropped explicitly
#: (see ``repro.lp.solvers._solve_auto``), never silently mid-backend.
BACKEND_OPTION_FIELDS: dict[str, frozenset[str]] = {
    "highs": frozenset({"time_limit", "mip_rel_gap", "warm_start"}),
    "branch_bound": frozenset(
        {
            "time_limit",
            "node_limit",
            "gap_tolerance",
            "max_iterations",
            "relaxation_engine",
            "cover_cut_rounds",
            "node_resolve",
            "presolve",
            "warm_start",
        }
    ),
    "simplex": frozenset({"max_iterations"}),
    "rounding": frozenset(
        {"relaxation_engine", "max_iterations", "presolve", "warm_start"}
    ),
    "auto": frozenset(
        {
            "time_limit",
            "mip_rel_gap",
            "node_limit",
            "gap_tolerance",
            "max_iterations",
            "relaxation_engine",
            "cover_cut_rounds",
            "node_resolve",
            "presolve",
            "warm_start",
        }
    ),
}

_VALID_KWARGS = frozenset(f.name for f in fields(SolveOptions))


def options_from_kwargs(backend: str, kwargs: Mapping[str, object]) -> SolveOptions:
    """Map legacy ``solve(..., **options)`` keywords onto :class:`SolveOptions`.

    Emits a ``DeprecationWarning`` pointing at the typed replacement and
    rejects keywords that never existed, instead of forwarding them into
    a backend that would drop them on the floor.
    """
    unknown = set(kwargs) - _VALID_KWARGS
    if unknown:
        raise TypeError(
            f"unknown solver option(s) {', '.join(sorted(unknown))}; "
            f"valid options: {', '.join(sorted(_VALID_KWARGS))}"
        )
    warnings.warn(
        "passing solver options as keywords is deprecated; build a "
        "repro.lp.SolveOptions and pass it as solve(..., options=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    return SolveOptions(**kwargs).validate_for(backend)
