"""From-scratch dense two-phase primal simplex.

This is the reproduction's stand-in for the LP core of a commercial
solver.  It works on the equality standard form produced by
:func:`repro.lp.standard_form.to_standard_form`:

    min c'x   s.t.  A x = b,  x >= 0,  b >= 0

Phase 1 introduces artificial variables and drives their sum to zero;
phase 2 optimizes the true objective from the resulting basis.  Dantzig
pricing is used until degeneracy is suspected, after which the solver
switches to Bland's rule to guarantee termination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Numerical tolerance for reduced costs / ratio tests.
TOL = 1e-9


@dataclass
class SimplexResult:
    """Raw simplex outcome over standard-form columns."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: np.ndarray | None
    objective: float
    iterations: int
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    bland_switches: int = 0
    degenerate_pivots: int = 0


class SimplexError(RuntimeError):
    """Internal simplex failure (numerical breakdown)."""


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the full tableau on (row, col)."""
    pivot_val = tableau[row, col]
    if abs(pivot_val) < TOL:
        raise SimplexError("pivot on (near-)zero element")
    tableau[row] /= pivot_val
    # Eliminate the pivot column from every other row in one vectorized step.
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row])
    # Clean tiny residuals in the pivot column for numerical hygiene.
    tableau[:, col] = 0.0
    tableau[row, col] = 1.0


def _choose_entering(
    reduced: np.ndarray, eligible: np.ndarray, bland: bool
) -> int | None:
    """Pick the entering column, or None when optimal."""
    candidates = np.where(eligible & (reduced < -TOL))[0]
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    # Dantzig: most negative reduced cost.
    return int(candidates[np.argmin(reduced[candidates])])


def _choose_leaving(tableau: np.ndarray, col: int, nrows: int) -> int | None:
    """Minimum-ratio test; None signals unboundedness."""
    column = tableau[:nrows, col]
    rhs = tableau[:nrows, -1]
    positive = column > TOL
    if not positive.any():
        return None
    ratios = np.full(nrows, np.inf)
    ratios[positive] = rhs[positive] / column[positive]
    best = ratios.min()
    # Tie-break on the lowest row index (part of Bland's protection).
    return int(np.where(np.isclose(ratios, best, rtol=0.0, atol=1e-12))[0][0])


@dataclass
class _PhaseOutcome:
    """Status plus the pivot-level counters of one simplex phase."""

    status: str
    iterations: int
    bland_switches: int = 0
    degenerate_pivots: int = 0


def _run_phase(
    tableau: np.ndarray,
    basis: list[int],
    eligible: np.ndarray,
    max_iterations: int,
) -> _PhaseOutcome:
    """Iterate pivots until optimality/unboundedness/limit.

    The objective row is the last row of ``tableau`` and holds reduced
    costs; the rhs column is the last column.
    """
    nrows = tableau.shape[0] - 1
    iterations = 0
    bland = False
    bland_switches = 0
    degenerate_pivots = 0
    stall = 0
    last_obj = tableau[-1, -1]
    while iterations < max_iterations:
        reduced = tableau[-1, :-1]
        col = _choose_entering(reduced, eligible, bland)
        if col is None:
            return _PhaseOutcome("optimal", iterations, bland_switches, degenerate_pivots)
        row = _choose_leaving(tableau, col, nrows)
        if row is None:
            return _PhaseOutcome("unbounded", iterations, bland_switches, degenerate_pivots)
        _pivot(tableau, row, col)
        basis[row] = col
        iterations += 1
        # Degeneracy watchdog: if the objective stops moving, fall back
        # to Bland's rule which cannot cycle.
        obj = tableau[-1, -1]
        if abs(obj - last_obj) < TOL:
            degenerate_pivots += 1
            stall += 1
            if stall > 2 * nrows:
                if not bland:
                    bland_switches += 1
                bland = True
        else:
            stall = 0
            bland = False
        last_obj = obj
    return _PhaseOutcome("iteration_limit", iterations, bland_switches, degenerate_pivots)


def solve_standard_form(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    max_iterations: int = 20000,
) -> SimplexResult:
    """Solve ``min c'x s.t. Ax = b, x >= 0`` (requires ``b >= 0``).

    Returns the optimal vertex, or a status describing why none exists.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    m, n = a.shape
    if b.shape != (m,):
        raise ValueError("b has wrong shape")
    if c.shape != (n,):
        raise ValueError("c has wrong shape")
    if (b < -TOL).any():
        raise ValueError("standard form requires b >= 0")

    if m == 0:
        # No constraints: optimum is x = 0 (c >= 0 required for boundedness).
        if (c < -TOL).any():
            return SimplexResult("unbounded", None, -np.inf, 0)
        return SimplexResult("optimal", np.zeros(n), 0.0, 0)

    # ---- Phase 1: minimize sum of artificials --------------------------
    # Tableau layout: [A | I_art | rhs], final row = phase objective.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Phase-1 cost: sum of artificial variables; express reduced costs by
    # subtracting each constraint row (since artificials are basic).
    tableau[-1, :n] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()

    basis = list(range(n, n + m))
    eligible = np.zeros(n + m, dtype=bool)
    eligible[:n] = True  # artificials may leave but never re-enter

    phase1 = _run_phase(tableau, basis, eligible, max_iterations)
    it1 = phase1.iterations
    if phase1.status == "iteration_limit":
        return SimplexResult(
            "iteration_limit", None, np.nan, it1,
            phase1_iterations=it1,
            bland_switches=phase1.bland_switches,
            degenerate_pivots=phase1.degenerate_pivots,
        )
    phase1_obj = -tableau[-1, -1]
    if phase1_obj > 1e-7:
        return SimplexResult(
            "infeasible", None, np.nan, it1,
            phase1_iterations=it1,
            bland_switches=phase1.bland_switches,
            degenerate_pivots=phase1.degenerate_pivots,
        )

    # Drive any artificial variables still in the basis out (degenerate rows).
    for row in range(m):
        if basis[row] >= n:
            pivot_cols = np.where(np.abs(tableau[row, :n]) > TOL)[0]
            if pivot_cols.size:
                _pivot(tableau, row, int(pivot_cols[0]))
                basis[row] = int(pivot_cols[0])
            # else: redundant row; the artificial stays basic at zero.

    # ---- Phase 2: real objective ----------------------------------------
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[:m, :n]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :n] = c
    # Subtract c_B * row for each basic variable to express reduced costs.
    for row, var in enumerate(basis):
        if var < n and abs(c[var]) > 0.0:
            tableau2[-1] -= c[var] * tableau2[row]

    eligible2 = np.ones(n, dtype=bool)
    for row, var in enumerate(basis):
        if var >= n:
            # A zero-level artificial remains: freeze its row by keeping the
            # column out of pricing (the row is redundant).
            continue
    phase2 = _run_phase(tableau2, basis, eligible2, max_iterations)
    iterations = it1 + phase2.iterations
    bland_switches = phase1.bland_switches + phase2.bland_switches
    degenerate_pivots = phase1.degenerate_pivots + phase2.degenerate_pivots
    if phase2.status == "unbounded":
        return SimplexResult(
            "unbounded", None, -np.inf, iterations,
            phase1_iterations=it1, phase2_iterations=phase2.iterations,
            bland_switches=bland_switches, degenerate_pivots=degenerate_pivots,
        )
    if phase2.status == "iteration_limit":
        return SimplexResult(
            "iteration_limit", None, np.nan, iterations,
            phase1_iterations=it1, phase2_iterations=phase2.iterations,
            bland_switches=bland_switches, degenerate_pivots=degenerate_pivots,
        )

    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            x[var] = tableau2[row, -1]
    # Numerical hygiene: clamp tiny negatives introduced by pivoting.
    x[np.abs(x) < 1e-11] = 0.0
    objective = float(c @ x)
    return SimplexResult(
        "optimal", x, objective, iterations,
        phase1_iterations=it1, phase2_iterations=phase2.iterations,
        bland_switches=bland_switches, degenerate_pivots=degenerate_pivots,
    )
