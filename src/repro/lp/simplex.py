"""From-scratch dense two-phase primal simplex.

This is the reproduction's stand-in for the LP core of a commercial
solver.  It works on the equality standard form produced by
:func:`repro.lp.standard_form.to_standard_form`:

    min c'x   s.t.  A x = b,  x >= 0,  b >= 0

Phase 1 introduces artificial variables and drives their sum to zero;
phase 2 optimizes the true objective from the resulting basis.  Dantzig
pricing is used until degeneracy is suspected, after which the solver
switches to Bland's rule to guarantee termination.

Branch-and-bound callers can skip phase 1 entirely: the optimal basis of
a solve is returned on the result, and passing it back as ``warm_basis``
re-factorizes it against the (re-bounded) child problem.  When the basis
is still primal feasible the solve starts directly in phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Numerical tolerance for reduced costs / ratio tests.
TOL = 1e-9

#: Feasibility slack allowed when validating a warm-start basis.
_WARM_TOL = 1e-9


@dataclass
class SimplexResult:
    """Raw simplex outcome over standard-form columns."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: np.ndarray | None
    objective: float
    iterations: int
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    bland_switches: int = 0
    degenerate_pivots: int = 0
    #: Final basis (column index per row) on optimal exit; reusable as a
    #: warm start for a re-bounded problem with the same column layout.
    basis: list[int] | None = None
    #: True when phase 1 was skipped via a feasible ``warm_basis``.
    warm_started: bool = False


class SimplexError(RuntimeError):
    """Internal simplex failure (numerical breakdown)."""


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the full tableau on (row, col)."""
    pivot_val = tableau[row, col]
    if abs(pivot_val) < TOL:
        raise SimplexError("pivot on (near-)zero element")
    tableau[row] /= pivot_val
    # Eliminate the pivot column from every other row in one vectorized step.
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row])
    # Clean tiny residuals in the pivot column for numerical hygiene.
    tableau[:, col] = 0.0
    tableau[row, col] = 1.0


def _choose_entering(
    reduced: np.ndarray, eligible: np.ndarray, bland: bool
) -> int | None:
    """Pick the entering column, or None when optimal."""
    candidates = np.where(eligible & (reduced < -TOL))[0]
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    # Dantzig: most negative reduced cost.
    return int(candidates[np.argmin(reduced[candidates])])


def _choose_leaving(
    tableau: np.ndarray,
    col: int,
    nrows: int,
    basis: list[int],
    bland: bool,
) -> int | None:
    """Minimum-ratio test; None signals unboundedness.

    Ties are broken on the lowest *basic-variable* index when Bland mode
    is active — Bland's anti-cycling guarantee is about variable indices,
    not row positions.  Outside Bland mode the lowest row index is kept
    as a cheap deterministic tie-break.
    """
    column = tableau[:nrows, col]
    rhs = tableau[:nrows, -1]
    positive = column > TOL
    if not positive.any():
        return None
    ratios = np.full(nrows, np.inf)
    ratios[positive] = rhs[positive] / column[positive]
    best = ratios.min()
    tied = np.where(np.isclose(ratios, best, rtol=0.0, atol=1e-12))[0]
    if bland and tied.size > 1:
        basis_ids = np.asarray(basis)[tied]
        return int(tied[np.argmin(basis_ids)])
    return int(tied[0])


@dataclass
class _PhaseOutcome:
    """Status plus the pivot-level counters of one simplex phase."""

    status: str
    iterations: int
    bland_switches: int = 0
    degenerate_pivots: int = 0


def _run_phase(
    tableau: np.ndarray,
    basis: list[int],
    eligible: np.ndarray,
    max_iterations: int,
) -> _PhaseOutcome:
    """Iterate pivots until optimality/unboundedness/limit.

    The objective row is the last row of ``tableau`` and holds reduced
    costs; the rhs column is the last column.
    """
    nrows = tableau.shape[0] - 1
    iterations = 0
    bland = False
    bland_switches = 0
    degenerate_pivots = 0
    stall = 0
    last_obj = tableau[-1, -1]
    while iterations < max_iterations:
        reduced = tableau[-1, :-1]
        col = _choose_entering(reduced, eligible, bland)
        if col is None:
            return _PhaseOutcome("optimal", iterations, bland_switches, degenerate_pivots)
        row = _choose_leaving(tableau, col, nrows, basis, bland)
        if row is None:
            return _PhaseOutcome("unbounded", iterations, bland_switches, degenerate_pivots)
        _pivot(tableau, row, col)
        basis[row] = col
        iterations += 1
        # Degeneracy watchdog: if the objective stops moving, fall back
        # to Bland's rule which cannot cycle.
        obj = tableau[-1, -1]
        if abs(obj - last_obj) < TOL:
            degenerate_pivots += 1
            stall += 1
            if stall > 2 * nrows:
                if not bland:
                    bland_switches += 1
                bland = True
        else:
            stall = 0
            bland = False
        last_obj = obj
    return _PhaseOutcome("iteration_limit", iterations, bland_switches, degenerate_pivots)


def _try_warm_start(
    a: np.ndarray,
    b: np.ndarray,
    warm_basis: list[int],
) -> tuple[np.ndarray, np.ndarray, list[int]] | None:
    """Re-factorize a previous basis against (possibly re-bounded) data.

    Returns ``(rows, rhs, art_rows)`` — the basis-reduced constraint
    block plus the rows whose basic value went negative under the new
    bounds.  Those rows are sign-flipped (so their rhs is positive) and
    need an artificial variable each; a branch-and-bound child typically
    has one or two of them, so phase 1 shrinks from ``m`` artificials to
    a handful.  ``None`` means the caller must run a full cold start.
    """
    m, n = a.shape
    if len(warm_basis) != m:
        return None
    cols = np.asarray(warm_basis, dtype=int)
    if (cols < 0).any() or (cols >= n).any() or np.unique(cols).size != m:
        return None
    basis_matrix = a[:, cols]
    try:
        solved = np.linalg.solve(basis_matrix, np.column_stack([a, b[:, None]]))
    except np.linalg.LinAlgError:
        return None
    if not np.isfinite(solved).all():
        return None
    rows = solved[:, :n]
    rhs = solved[:, -1]
    # Guard against an ill-conditioned (numerically near-singular) basis.
    if np.abs(basis_matrix @ rhs - b).max() > 1e-7 * max(1.0, np.abs(b).max()):
        return None
    neg = rhs < -_WARM_TOL
    if int(neg.sum()) > max(4, m // 2):
        # The basis is infeasible almost everywhere: a cold start's dense
        # phase 1 is no worse, and the flip bookkeeping buys nothing.
        return None
    rows[neg] *= -1.0
    rhs = np.where(neg, -rhs, rhs)
    return rows, np.maximum(rhs, 0.0), np.nonzero(neg)[0].tolist()


def solve_standard_form(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    max_iterations: int = 20000,
    warm_basis: list[int] | None = None,
) -> SimplexResult:
    """Solve ``min c'x s.t. Ax = b, x >= 0`` (requires ``b >= 0``).

    Returns the optimal vertex, or a status describing why none exists.
    ``warm_basis`` (the ``basis`` of a previous result on a same-shaped
    problem) skips phase 1 when it is still primal feasible.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    m, n = a.shape
    if b.shape != (m,):
        raise ValueError("b has wrong shape")
    if c.shape != (n,):
        raise ValueError("c has wrong shape")
    if (b < -TOL).any():
        raise ValueError("standard form requires b >= 0")

    if m == 0:
        # No constraints: optimum is x = 0 (c >= 0 required for boundedness).
        if (c < -TOL).any():
            return SimplexResult("unbounded", None, -np.inf, 0)
        return SimplexResult("optimal", np.zeros(n), 0.0, 0, basis=[])

    # A warm basis (from a parent B&B node) replaces the cold start's
    # all-artificial basis: only the rows whose basic value turned
    # negative under the new bounds get an artificial variable.
    warm_started = False
    rows, rhs = a, b
    art_rows = list(range(m))
    basis = [-1] * m
    if warm_basis is not None:
        prepared = _try_warm_start(a, b, warm_basis)
        if prepared is not None:
            rows, rhs, art_rows = prepared
            warm_started = True
            basis = list(warm_basis)

    phase1 = _PhaseOutcome("optimal", 0)
    if art_rows:
        # ---- Phase 1: minimize the sum of the artificials --------------
        # Tableau layout: [rows | I_art (on art_rows) | rhs], final row =
        # phase objective.  Reduced costs subtract each artificial-basic
        # row from the (zero) phase-1 cost of the real columns.
        k = len(art_rows)
        art_idx = np.asarray(art_rows, dtype=int)
        tableau = np.zeros((m + 1, n + k + 1))
        tableau[:m, :n] = rows
        tableau[art_idx, n + np.arange(k)] = 1.0
        tableau[:m, -1] = rhs
        tableau[-1, :n] = -rows[art_idx].sum(axis=0)
        tableau[-1, -1] = -rhs[art_idx].sum()

        for j, row in enumerate(art_rows):
            basis[row] = n + j
        eligible = np.zeros(n + k, dtype=bool)
        eligible[:n] = True  # artificials may leave but never re-enter

        phase1 = _run_phase(tableau, basis, eligible, max_iterations)
        it1 = phase1.iterations
        if phase1.status == "iteration_limit":
            return SimplexResult(
                "iteration_limit", None, np.nan, it1,
                phase1_iterations=it1,
                bland_switches=phase1.bland_switches,
                degenerate_pivots=phase1.degenerate_pivots,
                warm_started=warm_started,
            )
        phase1_obj = -tableau[-1, -1]
        if phase1_obj > 1e-7:
            return SimplexResult(
                "infeasible", None, np.nan, it1,
                phase1_iterations=it1,
                bland_switches=phase1.bland_switches,
                degenerate_pivots=phase1.degenerate_pivots,
                warm_started=warm_started,
            )

        # Drive any artificial variables still in the basis out
        # (degenerate rows).
        for row in range(m):
            if basis[row] >= n:
                pivot_cols = np.where(np.abs(tableau[row, :n]) > TOL)[0]
                if pivot_cols.size:
                    _pivot(tableau, row, int(pivot_cols[0]))
                    basis[row] = int(pivot_cols[0])
                # else: redundant row; the artificial stays basic at zero.

        # ---- Phase 2: real objective -----------------------------------
        tableau2 = np.zeros((m + 1, n + 1))
        tableau2[:m, :n] = tableau[:m, :n]
        tableau2[:m, -1] = tableau[:m, -1]
        tableau2[-1, :n] = c
    else:
        # Warm basis still primal feasible: phase 1 is skipped outright.
        tableau2 = np.zeros((m + 1, n + 1))
        tableau2[:m, :n] = rows
        tableau2[:m, -1] = rhs
        tableau2[-1, :n] = c

    it1 = phase1.iterations
    # Subtract c_B * row for each basic variable to express reduced costs.
    for row, var in enumerate(basis):
        if var < n and abs(c[var]) > 0.0:
            tableau2[-1] -= c[var] * tableau2[row]

    # Rows whose basic variable is still an artificial (var >= n) need no
    # special freeze: the drive-out step above only leaves an artificial
    # basic when its row is identically zero over the real columns (the
    # constraint was redundant).  Such a row can never win the ratio test
    # (no positive entry) and every pivot subtracts a multiple of the
    # all-zero row's entry — i.e. nothing — so the row stays zero and the
    # artificial stays basic at level zero for the whole of phase 2.
    eligible2 = np.ones(n, dtype=bool)
    phase2 = _run_phase(tableau2, basis, eligible2, max_iterations)
    iterations = it1 + phase2.iterations
    bland_switches = phase1.bland_switches + phase2.bland_switches
    degenerate_pivots = phase1.degenerate_pivots + phase2.degenerate_pivots
    if phase2.status == "unbounded":
        return SimplexResult(
            "unbounded", None, -np.inf, iterations,
            phase1_iterations=it1, phase2_iterations=phase2.iterations,
            bland_switches=bland_switches, degenerate_pivots=degenerate_pivots,
            warm_started=warm_started,
        )
    if phase2.status == "iteration_limit":
        return SimplexResult(
            "iteration_limit", None, np.nan, iterations,
            phase1_iterations=it1, phase2_iterations=phase2.iterations,
            bland_switches=bland_switches, degenerate_pivots=degenerate_pivots,
            warm_started=warm_started,
        )

    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            x[var] = tableau2[row, -1]
    # Numerical hygiene: clamp tiny negatives introduced by pivoting.
    x[np.abs(x) < 1e-11] = 0.0
    objective = float(c @ x)
    return SimplexResult(
        "optimal", x, objective, iterations,
        phase1_iterations=it1, phase2_iterations=phase2.iterations,
        bland_switches=bland_switches, degenerate_pivots=degenerate_pivots,
        basis=list(basis),
        warm_started=warm_started,
    )
