"""Canonical problem fingerprints for the solve-layer cache.

Two problems with the same fingerprint describe the same mathematical
model: identical objective sense and coefficients, identical variables
(name, bounds, domain) and identical constraints (coefficients, sense,
right-hand side, in order).  Constraint *display names* are excluded —
``pin[a,b]`` versus ``c17`` does not change the feasible region — and
floats are canonicalized through ``repr`` so ``1.0`` and ``1`` agree.

The fingerprint splits in two:

* :func:`structure_fingerprint` covers everything **except variable
  bounds** — two problems with the same structure share constraint
  matrices and differ only in ``(lb, ub)``, which is exactly the family
  :class:`repro.lp.matrix_lp.RelaxationContext` caches;
* :func:`problem_fingerprint` additionally hashes the bounds, giving
  full solution-cache identity.

Both are streaming SHA-1 digests; hashing an enterprise1-scale model
(thousands of variables) costs single-digit milliseconds, far below one
solve.
"""

from __future__ import annotations

import hashlib

from .problem import Problem


def _hash_structure(h: "hashlib._Hash", problem: Problem, include_bounds: bool) -> None:
    update = h.update
    update(problem.sense.encode())
    for var in problem.variables:
        update(b"v")
        update(var.name.encode())
        update(var.vtype.value.encode())
        if include_bounds:
            update(repr(var.lb).encode())
            update(b",")
            update(repr(var.ub).encode())
    update(b"|obj")
    update(repr(problem.objective.constant).encode())
    for var, coef in problem.objective.terms().items():
        update(var.name.encode())
        update(repr(coef).encode())
    for con in problem.constraints:
        update(b"|c")
        update(con.sense.value.encode())
        update(repr(con.rhs).encode())
        for var, coef in con.expr.terms().items():
            update(var.name.encode())
            update(repr(coef).encode())


def problem_fingerprint(problem: Problem) -> str:
    """Full model identity: structure plus variable bounds."""
    h = hashlib.sha1()
    _hash_structure(h, problem, include_bounds=True)
    return h.hexdigest()


def structure_fingerprint(problem: Problem) -> str:
    """Bounds-free identity: same value ⇒ same constraint matrices.

    Bound-only edits (pinning a binary to 1, forbidding one to 0,
    retiring a site by fixing its variables) preserve this fingerprint,
    which is what lets the incremental solve layer keep one
    :class:`~repro.lp.matrix_lp.RelaxationContext` alive across an
    entire refinement session.
    """
    h = hashlib.sha1()
    _hash_structure(h, problem, include_bounds=False)
    return h.hexdigest()
