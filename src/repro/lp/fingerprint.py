"""Canonical problem fingerprints for the solve-layer cache.

Two problems with the same fingerprint describe the same mathematical
model: identical objective sense and coefficients, identical variables
(name, bounds, domain) and identical constraints (coefficients, sense,
right-hand side, in order).  Constraint *display names* are excluded —
``pin[a,b]`` versus ``c17`` does not change the feasible region — and
floats are canonicalized through ``repr`` so ``1.0`` and ``1`` agree.

The fingerprint splits in two:

* :func:`structure_fingerprint` covers everything **except variable
  bounds** — two problems with the same structure share constraint
  matrices and differ only in ``(lb, ub)``, which is exactly the family
  :class:`repro.lp.matrix_lp.RelaxationContext` caches;
* :func:`problem_fingerprint` additionally hashes the bounds, giving
  full solution-cache identity.

Both are streaming SHA-1 digests; hashing an enterprise1-scale model
(thousands of variables) costs single-digit milliseconds, far below one
solve.
"""

from __future__ import annotations

import hashlib

from .problem import Problem
from .sparse import iter_constraint_terms


def _hash_structure(h: "hashlib._Hash", problem: Problem, include_bounds: bool) -> None:
    update = h.update
    update(problem.sense.encode())
    for var in problem.variables:
        update(b"v")
        update(var.name.encode())
        update(var.vtype.value.encode())
        if include_bounds:
            update(repr(var.lb).encode())
            update(b",")
            update(repr(var.ub).encode())
    update(b"|obj")
    update(repr(problem.objective.constant).encode())
    for var, coef in problem.objective.terms().items():
        update(var.name.encode())
        update(repr(coef).encode())
    # The constraint section hashes the shared assembly traversal
    # (`iter_constraint_terms`) — the very stream `constraint_blocks`
    # turns into matrices — so cache identity cannot drift from what the
    # solver engines actually see.  Term order and `repr` floats keep
    # the digest byte-identical to the historical direct walk.
    for con, terms in iter_constraint_terms(problem):
        update(b"|c")
        update(con.sense.value.encode())
        update(repr(con.rhs).encode())
        for _col, var, coef in terms:
            update(var.name.encode())
            update(repr(coef).encode())


def problem_fingerprint(problem: Problem) -> str:
    """Full model identity: structure plus variable bounds."""
    h = hashlib.sha1()
    _hash_structure(h, problem, include_bounds=True)
    return h.hexdigest()


def constraint_digest(con) -> bytes:
    """Content digest of one constraint row.

    The byte stream matches the per-constraint section of
    :func:`_hash_structure` exactly (the expression's own term order,
    the very stream :func:`~repro.lp.sparse.iter_constraint_terms`
    yields), so two rows with equal digests hash identically inside any
    structure fingerprint.  Used by the solve cache to recognize a
    re-created-but-identical constraint (directive journals pop and
    re-apply rows wholesale) without comparing Python objects.
    """
    h = hashlib.sha1()
    update = h.update
    update(b"|c")
    update(con.sense.value.encode())
    update(repr(con.rhs).encode())
    for var, coef in con.expr.terms().items():
        update(var.name.encode())
        update(repr(coef).encode())
    return h.digest()


def objective_digest(problem: Problem) -> bytes:
    """Content digest of the objective (sense, constant, terms)."""
    h = hashlib.sha1()
    update = h.update
    update(problem.sense.encode())
    update(b"|obj")
    update(repr(problem.objective.constant).encode())
    for var, coef in problem.objective.terms().items():
        update(var.name.encode())
        update(repr(coef).encode())
    return h.digest()


def extend_structure_fingerprint(
    parent_key: str,
    problem: Problem,
    appended_digests: list[bytes],
) -> str:
    """Chained structure identity: ``parent ⊕ objective ⊕ appended rows``.

    When the solve cache extends a cached :class:`RelaxationContext`
    with appended rows (or swaps the objective in place) it needs a new
    structure key *without* re-canonicalizing the whole model — that
    O(model) walk is exactly what the extension path avoids.  The
    chained key hashes the parent's key, the current objective digest
    and the appended rows' content digests; it lives in its own
    ``ext:`` namespace so it can never collide with a full 40-hex
    :func:`structure_fingerprint`.  Two different extension histories
    reaching the same model hash differently — that is fine, keys only
    ever compare against keys produced the same way within one cache.
    """
    h = hashlib.sha1()
    h.update(parent_key.encode())
    h.update(b"|swap-obj")
    h.update(objective_digest(problem))
    for digest in appended_digests:
        h.update(digest)
    return "ext:" + h.hexdigest()


def _hash_payload(h: "hashlib._Hash", value) -> None:
    """Canonically hash a JSON-able value (the float/ordering rules above)."""
    update = h.update
    if value is None:
        update(b"n")
    elif isinstance(value, bool):
        update(b"t" if value else b"f")
    elif isinstance(value, (int, float)):
        # One tag for all numbers: a payload that travelled through JSON
        # (1 → 1.0) must keep its fingerprint.  Integers too large for a
        # float keep exact identity via their own repr.
        update(b"N")
        try:
            as_float = float(value)
            exact = not isinstance(value, int) or int(as_float) == value
        except OverflowError:
            exact = False
        update(repr(as_float if exact else value).encode())
    elif isinstance(value, str):
        update(b"S")
        update(value.encode())
        update(b"\x00")
    elif isinstance(value, (list, tuple)):
        update(b"[")
        for item in value:
            _hash_payload(h, item)
        update(b"]")
    elif isinstance(value, dict):
        update(b"{")
        for key in sorted(value):
            update(b"K")
            update(str(key).encode())
            update(b"\x00")
            _hash_payload(h, value[key])
        update(b"}")
    else:
        raise TypeError(
            f"payload_fingerprint only hashes JSON-able values, got "
            f"{type(value).__name__}"
        )


def payload_fingerprint(payload) -> str:
    """Canonical SHA-1 of a JSON-able payload.

    The planning service keys its result cache on this: two job
    submissions with equal payloads (same state dict, same options —
    dict ordering and ``1`` vs ``1.0`` aside, exactly the
    canonicalization :func:`problem_fingerprint` applies to models) map
    to the same digest, so a repeated plan request is served from the
    cache without building or solving anything.
    """
    h = hashlib.sha1()
    _hash_payload(h, payload)
    return h.hexdigest()


def structure_fingerprint(problem: Problem) -> str:
    """Bounds-free identity: same value ⇒ same constraint matrices.

    Bound-only edits (pinning a binary to 1, forbidding one to 0,
    retiring a site by fixing its variables) preserve this fingerprint,
    which is what lets the incremental solve layer keep one
    :class:`~repro.lp.matrix_lp.RelaxationContext` alive across an
    entire refinement session.
    """
    h = hashlib.sha1()
    _hash_structure(h, problem, include_bounds=False)
    return h.hexdigest()
