"""Conversion of a :class:`~repro.lp.problem.Problem` to matrix forms.

Two conversions are provided:

* :func:`to_matrix_form` — the natural inequality form used by the HiGHS
  backend (``A_ub x <= b_ub``, ``A_eq x = b_eq`` plus bounds).  The
  matrices are a dense view **derived from** the shared sparse assembly
  (:func:`repro.lp.sparse.constraint_blocks`) — the same traversal the
  HiGHS backend, the revised simplex core, and the fingerprint layer
  consume, so the engines cannot disagree about the model.
* :func:`to_standard_form` — equality standard form ``min c'x, Ax = b,
  x >= 0`` used by the dense tableau simplex.  Variable shifts and
  free-variable splits are recorded so the original solution can be
  recovered with :meth:`StandardForm.recover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .expressions import Sense, Variable
from .problem import ObjectiveSense, Problem
from .sparse import bound_arrays, constraint_blocks, objective_arrays


@dataclass
class MatrixForm:
    """Inequality/equality matrix view of a problem (minimization).

    ``objective_sign`` is -1 when the original problem was a maximization
    (the cost vector has been negated); callers must flip the objective
    value back.
    """

    variables: list[Variable]
    c: np.ndarray
    c0: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    objective_sign: float


def to_matrix_form(problem: Problem) -> MatrixForm:
    """Dense matrices in registration order, derived from the sparse assembly.

    Row order is preserved within each block: ``a_ub`` keeps the LE/GE
    rows in model order (GE rows negated into LE form), ``a_eq`` keeps
    the equality rows in model order — identical to the historical
    per-constraint dense build.
    """
    blocks = constraint_blocks(problem)
    c, c0, sign = objective_arrays(problem)
    lb, ub, integrality = bound_arrays(problem)

    dense = blocks.to_dense()
    is_eq = np.fromiter(
        (s is Sense.EQ for s in blocks.senses), dtype=bool, count=blocks.n_rows
    )
    is_ge = np.fromiter(
        (s is Sense.GE for s in blocks.senses), dtype=bool, count=blocks.n_rows
    )
    a_ub = dense[~is_eq]
    b_ub = blocks.rhs[~is_eq].copy()
    ge = is_ge[~is_eq]
    a_ub[ge] *= -1.0
    b_ub[ge] *= -1.0

    return MatrixForm(
        variables=blocks.variables,
        c=c,
        c0=c0,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=dense[is_eq],
        b_eq=blocks.rhs[is_eq].copy(),
        lb=lb,
        ub=ub,
        integrality=integrality,
        objective_sign=sign,
    )


@dataclass
class StandardForm:
    """Equality standard form ``min c'x + c0, A x = b, x >= 0``.

    ``plus_index`` / ``minus_index`` map each original variable to its
    column(s): shifted variables use only ``plus_index``; free variables
    are split as ``x = x_plus - x_minus``.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    c0: float
    variables: list[Variable] = field(default_factory=list)
    plus_index: dict[Variable, int] = field(default_factory=dict)
    minus_index: dict[Variable, int] = field(default_factory=dict)
    shift: dict[Variable, float] = field(default_factory=dict)
    objective_sign: float = 1.0

    def recover(self, x: np.ndarray) -> dict[Variable, float]:
        """Map a standard-form point back to original variable values."""
        values: dict[Variable, float] = {}
        for var in self.variables:
            val = x[self.plus_index[var]]
            if var in self.minus_index:
                val -= x[self.minus_index[var]]
            values[var] = val + self.shift.get(var, 0.0)
        return values


def to_standard_form(problem: Problem) -> StandardForm:
    """Convert to equality standard form with non-negative variables.

    Finite lower bounds are shifted out (``x = x' + lb``); finite upper
    bounds become explicit ``<=`` rows; free variables are split into a
    difference of two non-negative columns.
    """
    variables = problem.variables
    sign = 1.0 if problem.sense == ObjectiveSense.MINIMIZE else -1.0

    plus_index: dict[Variable, int] = {}
    minus_index: dict[Variable, int] = {}
    shift: dict[Variable, float] = {}
    ncols = 0
    for var in variables:
        plus_index[var] = ncols
        ncols += 1
        if var.lb is None:
            minus_index[var] = ncols
            ncols += 1
        else:
            shift[var] = var.lb

    # Rows: original constraints plus upper-bound rows.
    rows: list[tuple[dict[int, float], Sense, float]] = []
    for con in problem.constraints:
        coefs: dict[int, float] = {}
        rhs = con.rhs
        for var, coef in con.expr.terms().items():
            coefs[plus_index[var]] = coefs.get(plus_index[var], 0.0) + coef
            if var in minus_index:
                coefs[minus_index[var]] = coefs.get(minus_index[var], 0.0) - coef
            rhs -= coef * shift.get(var, 0.0)
        rows.append((coefs, con.sense, rhs))
    for var in variables:
        if var.ub is not None:
            bound = var.ub - shift.get(var, 0.0)
            # A free variable's bound constrains x_plus - x_minus, not
            # x_plus alone — dropping the minus column would misreport a
            # negative upper bound as infeasible.
            coefs = {plus_index[var]: 1.0}
            if var in minus_index:
                coefs[minus_index[var]] = -1.0
            rows.append((coefs, Sense.LE, bound))

    # Count slack columns needed.
    nslack = sum(1 for _, sense, _ in rows if sense is not Sense.EQ)
    total = ncols + nslack
    a = np.zeros((len(rows), total))
    b = np.zeros(len(rows))
    slack_col = ncols
    for r, (coefs, sense, rhs) in enumerate(rows):
        for col, coef in coefs.items():
            a[r, col] = coef
        b[r] = rhs
        if sense is Sense.LE:
            a[r, slack_col] = 1.0
            slack_col += 1
        elif sense is Sense.GE:
            a[r, slack_col] = -1.0
            slack_col += 1

    c = np.zeros(total)
    c0 = sign * problem.objective.constant
    for var, coef in problem.objective.terms().items():
        c[plus_index[var]] += sign * coef
        if var in minus_index:
            c[minus_index[var]] -= sign * coef
        c0 += sign * coef * shift.get(var, 0.0)

    # Normalize to b >= 0 for phase-1 simplex.
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    return StandardForm(
        a=a,
        b=b,
        c=c,
        c0=c0,
        variables=variables,
        plus_index=plus_index,
        minus_index=minus_index,
        shift=shift,
        objective_sign=sign,
    )
