"""Conversion of a :class:`~repro.lp.problem.Problem` to matrix forms.

Two conversions are provided:

* :func:`to_matrix_form` — the natural inequality form used by the HiGHS
  backend (``A_ub x <= b_ub``, ``A_eq x = b_eq`` plus bounds).
* :func:`to_standard_form` — equality standard form ``min c'x, Ax = b,
  x >= 0`` used by the from-scratch two-phase simplex.  Variable shifts
  and free-variable splits are recorded so the original solution can be
  recovered with :meth:`StandardForm.recover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .expressions import Sense, Variable
from .problem import ObjectiveSense, Problem


@dataclass
class MatrixForm:
    """Inequality/equality matrix view of a problem (minimization).

    ``objective_sign`` is -1 when the original problem was a maximization
    (the cost vector has been negated); callers must flip the objective
    value back.
    """

    variables: list[Variable]
    c: np.ndarray
    c0: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    objective_sign: float


def to_matrix_form(problem: Problem) -> MatrixForm:
    """Build dense matrices in the variables' registration order."""
    variables = problem.variables
    index = {var: i for i, var in enumerate(variables)}
    n = len(variables)

    sign = 1.0 if problem.sense == ObjectiveSense.MINIMIZE else -1.0
    c = np.zeros(n)
    for var, coef in problem.objective.terms().items():
        c[index[var]] = sign * coef
    c0 = sign * problem.objective.constant

    ub_rows: list[np.ndarray] = []
    ub_rhs: list[float] = []
    eq_rows: list[np.ndarray] = []
    eq_rhs: list[float] = []
    for con in problem.constraints:
        row = np.zeros(n)
        for var, coef in con.expr.terms().items():
            row[index[var]] = coef
        if con.sense is Sense.LE:
            ub_rows.append(row)
            ub_rhs.append(con.rhs)
        elif con.sense is Sense.GE:
            ub_rows.append(-row)
            ub_rhs.append(-con.rhs)
        else:
            eq_rows.append(row)
            eq_rhs.append(con.rhs)

    lb = np.array([-np.inf if v.lb is None else v.lb for v in variables])
    ub = np.array([np.inf if v.ub is None else v.ub for v in variables])
    integrality = np.array([1 if v.is_integral else 0 for v in variables])

    return MatrixForm(
        variables=variables,
        c=c,
        c0=c0,
        a_ub=np.array(ub_rows).reshape(len(ub_rows), n) if ub_rows else np.zeros((0, n)),
        b_ub=np.array(ub_rhs),
        a_eq=np.array(eq_rows).reshape(len(eq_rows), n) if eq_rows else np.zeros((0, n)),
        b_eq=np.array(eq_rhs),
        lb=lb,
        ub=ub,
        integrality=integrality,
        objective_sign=sign,
    )


@dataclass
class StandardForm:
    """Equality standard form ``min c'x + c0, A x = b, x >= 0``.

    ``plus_index`` / ``minus_index`` map each original variable to its
    column(s): shifted variables use only ``plus_index``; free variables
    are split as ``x = x_plus - x_minus``.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    c0: float
    variables: list[Variable] = field(default_factory=list)
    plus_index: dict[Variable, int] = field(default_factory=dict)
    minus_index: dict[Variable, int] = field(default_factory=dict)
    shift: dict[Variable, float] = field(default_factory=dict)
    objective_sign: float = 1.0

    def recover(self, x: np.ndarray) -> dict[Variable, float]:
        """Map a standard-form point back to original variable values."""
        values: dict[Variable, float] = {}
        for var in self.variables:
            val = x[self.plus_index[var]]
            if var in self.minus_index:
                val -= x[self.minus_index[var]]
            values[var] = val + self.shift.get(var, 0.0)
        return values


def to_standard_form(problem: Problem) -> StandardForm:
    """Convert to equality standard form with non-negative variables.

    Finite lower bounds are shifted out (``x = x' + lb``); finite upper
    bounds become explicit ``<=`` rows; free variables are split into a
    difference of two non-negative columns.
    """
    variables = problem.variables
    sign = 1.0 if problem.sense == ObjectiveSense.MINIMIZE else -1.0

    plus_index: dict[Variable, int] = {}
    minus_index: dict[Variable, int] = {}
    shift: dict[Variable, float] = {}
    ncols = 0
    for var in variables:
        plus_index[var] = ncols
        ncols += 1
        if var.lb is None:
            minus_index[var] = ncols
            ncols += 1
        else:
            shift[var] = var.lb

    # Rows: original constraints plus upper-bound rows.
    rows: list[tuple[dict[int, float], Sense, float]] = []
    for con in problem.constraints:
        coefs: dict[int, float] = {}
        rhs = con.rhs
        for var, coef in con.expr.terms().items():
            coefs[plus_index[var]] = coefs.get(plus_index[var], 0.0) + coef
            if var in minus_index:
                coefs[minus_index[var]] = coefs.get(minus_index[var], 0.0) - coef
            rhs -= coef * shift.get(var, 0.0)
        rows.append((coefs, con.sense, rhs))
    for var in variables:
        if var.ub is not None:
            bound = var.ub - shift.get(var, 0.0)
            # A free variable's bound constrains x_plus - x_minus, not
            # x_plus alone — dropping the minus column would misreport a
            # negative upper bound as infeasible.
            coefs = {plus_index[var]: 1.0}
            if var in minus_index:
                coefs[minus_index[var]] = -1.0
            rows.append((coefs, Sense.LE, bound))

    # Count slack columns needed.
    nslack = sum(1 for _, sense, _ in rows if sense is not Sense.EQ)
    total = ncols + nslack
    a = np.zeros((len(rows), total))
    b = np.zeros(len(rows))
    slack_col = ncols
    for r, (coefs, sense, rhs) in enumerate(rows):
        for col, coef in coefs.items():
            a[r, col] = coef
        b[r] = rhs
        if sense is Sense.LE:
            a[r, slack_col] = 1.0
            slack_col += 1
        elif sense is Sense.GE:
            a[r, slack_col] = -1.0
            slack_col += 1

    c = np.zeros(total)
    c0 = sign * problem.objective.constant
    for var, coef in problem.objective.terms().items():
        c[plus_index[var]] += sign * coef
        if var in minus_index:
            c[minus_index[var]] -= sign * coef
        c0 += sign * coef * shift.get(var, 0.0)

    # Normalize to b >= 0 for phase-1 simplex.
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    return StandardForm(
        a=a,
        b=b,
        c=c,
        c0=c0,
        variables=variables,
        plus_index=plus_index,
        minus_index=minus_index,
        shift=shift,
        objective_sign=sign,
    )
