"""Restricted master LP for Dantzig-Wolfe column generation.

The consolidation MILP is nearly block-separable: each application
group's block is "pick one eligible target site", and the blocks couple
only through the per-target capacity rows.  The Dantzig-Wolfe master
over that structure is

.. math::

    \\min \\sum_p c_p \\lambda_p
    \\quad \\text{s.t.} \\quad
    \\sum_p s_p \\lambda_p \\le O_j \\;\\forall j, \\qquad
    \\sum_{p \\in g} \\lambda_p = 1 \\;\\forall g, \\qquad
    \\lambda \\ge 0,

where each column *p* is one (group, target) placement with cost
:math:`c_p` and load :math:`s_p`.  This module owns the *restricted*
master: a column pool grown by the pricing loop in
:mod:`repro.core.decomposition`, solved with the builtin sparse revised
simplex (:mod:`repro.lp.revised_simplex`), warm-started across
re-solves by remapping the previous ``(basis, vstat)`` token onto the
extended column layout, and exposing the row duals the simplex now
reports (capacity duals :math:`\\pi_j \\le 0`, convexity duals
:math:`\\mu_g`).

One artificial column per convexity row (big-M cost, no capacity
footprint) keeps every restricted master feasible regardless of which
placement columns have been generated yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .revised_simplex import AT_LOWER, SparseBoundedLP, solve_bounded_lp
from .sparse import CSCMatrix


@dataclass
class MasterSolution:
    """One restricted-master solve: primal weights plus both dual rows."""

    status: str
    objective: float
    #: Column weights, aligned with the master's column pool (the first
    #: ``n_groups`` entries are the artificial columns).
    weights: np.ndarray | None
    #: Capacity-row duals, one per target (``<=`` rows: ``pi <= 0``).
    capacity_duals: np.ndarray | None
    #: Convexity-row duals, one per group.
    convexity_duals: np.ndarray | None
    iterations: int = 0
    warm_started: bool = False
    #: Total weight carried by artificial columns (0 at a usable optimum).
    artificial_weight: float = 0.0


@dataclass
class RestrictedMasterLP:
    """Column pool + re-solvable master for one decomposition run."""

    capacities: np.ndarray
    n_groups: int
    artificial_cost: float

    #: Parallel per-column arrays (artificials occupy the first
    #: ``n_groups`` slots with ``target == -1`` and ``load == 0``).
    col_group: list[int] = field(default_factory=list)
    col_target: list[int] = field(default_factory=list)
    col_cost: list[float] = field(default_factory=list)
    col_load: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.capacities = np.asarray(self.capacities, dtype=float)
        self._seen: set[tuple[int, int]] = set()
        self._warm: tuple[np.ndarray, np.ndarray] | None = None
        self._warm_ncols = 0
        for g in range(self.n_groups):
            self.col_group.append(g)
            self.col_target.append(-1)
            self.col_cost.append(float(self.artificial_cost))
            self.col_load.append(0.0)

    # -- column pool -------------------------------------------------------

    @property
    def n_columns(self) -> int:
        return len(self.col_cost)

    def has_column(self, group: int, target: int) -> bool:
        return (group, target) in self._seen

    def add_column(self, group: int, target: int, cost: float, load: float) -> bool:
        """Add one placement column; ignores duplicates. Returns added?"""
        if (group, target) in self._seen:
            return False
        self._seen.add((group, target))
        self.col_group.append(int(group))
        self.col_target.append(int(target))
        self.col_cost.append(float(cost))
        self.col_load.append(float(load))
        return True

    # -- assembly ----------------------------------------------------------

    def _family(self) -> SparseBoundedLP:
        """Assemble the current pool as a :class:`SparseBoundedLP`.

        Rows: the ``J`` capacity ``<=`` rows, then the ``G`` convexity
        equalities.  Every column has at most one nonzero per block, so
        both CSC matrices are built directly from the parallel arrays.
        """
        ncols = self.n_columns
        n_targets = self.capacities.shape[0]
        group = np.asarray(self.col_group, dtype=np.int64)
        target = np.asarray(self.col_target, dtype=np.int64)
        load = np.asarray(self.col_load, dtype=float)

        real = target >= 0
        ub_counts = real.astype(np.int64)
        ub_indptr = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(ub_counts, out=ub_indptr[1:])
        a_ub = CSCMatrix(
            shape=(n_targets, ncols),
            indptr=ub_indptr,
            indices=target[real].copy(),
            data=load[real].copy(),
        )
        a_eq = CSCMatrix(
            shape=(self.n_groups, ncols),
            indptr=np.arange(ncols + 1, dtype=np.int64),
            indices=group.copy(),
            data=np.ones(ncols),
        )
        return SparseBoundedLP(
            c=np.asarray(self.col_cost, dtype=float),
            a_ub=a_ub,
            b_ub=self.capacities,
            a_eq=a_eq,
            b_eq=np.ones(self.n_groups),
        )

    def _remapped_warm(self, ncols: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Shift the cached warm token onto the extended column layout.

        Structural indices are stable (columns are only appended); slack
        indices move by the number of columns added since the token was
        taken, and the new columns enter nonbasic at their lower bound.
        """
        if self._warm is None:
            return None
        basis, vstat = self._warm
        added = ncols - self._warm_ncols
        if added == 0:
            return basis, vstat
        basis = np.where(basis >= self._warm_ncols, basis + added, basis)
        vstat = np.concatenate([
            vstat[: self._warm_ncols],
            np.full(added, AT_LOWER, dtype=vstat.dtype),
            vstat[self._warm_ncols :],
        ])
        return basis, vstat

    # -- solve -------------------------------------------------------------

    def solve(self, max_iterations: int = 50000) -> MasterSolution:
        """Re-solve the restricted master over the current column pool."""
        ncols = self.n_columns
        family = self._family()
        lb = np.zeros(ncols)
        ub = np.ones(ncols)
        result = solve_bounded_lp(
            family, lb, ub,
            max_iterations=max_iterations,
            warm=self._remapped_warm(ncols),
        )
        if result.status != "optimal":
            return MasterSolution(
                status=result.status, objective=float("nan"), weights=None,
                capacity_duals=None, convexity_duals=None,
                iterations=result.iterations,
            )
        self._warm = (result.basis, result.vstat)
        self._warm_ncols = ncols
        n_targets = self.capacities.shape[0]
        duals = result.duals
        weights = result.x
        return MasterSolution(
            status="optimal",
            objective=float(result.objective),
            weights=weights,
            capacity_duals=duals[:n_targets].copy(),
            convexity_duals=duals[n_targets:].copy(),
            iterations=result.iterations,
            warm_started=result.warm_started,
            artificial_weight=float(weights[: self.n_groups].sum()),
        )

    # -- extraction --------------------------------------------------------

    def group_support(self, weights: np.ndarray) -> list[list[tuple[int, float]]]:
        """Per group: its placement columns' ``(target, weight)`` pairs,
        heaviest first (artificials excluded)."""
        support: list[list[tuple[int, float]]] = [[] for _ in range(self.n_groups)]
        for idx in range(self.n_groups, self.n_columns):
            w = float(weights[idx])
            if w > 1e-9:
                support[self.col_group[idx]].append((self.col_target[idx], w))
        for entries in support:
            entries.sort(key=lambda tw: -tw[1])
        return support
