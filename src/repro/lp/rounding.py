"""LP-relaxation rounding heuristic backend.

Solves the continuous relaxation, rounds integral variables to the
nearest integer, and reports the result only when it is feasible for the
original model.  This is a *heuristic*: it trades optimality for speed
and is used as a fast warm-start / sanity baseline.  Domain-aware repair
(reassigning application groups when a capacity breaks) lives in the
planner, not here.
"""

from __future__ import annotations

import time

import numpy as np

from ..telemetry import SolveStats
from .matrix_lp import solve_lp_arrays
from .problem import Problem
from .solution import Solution, SolveStatus
from .standard_form import to_matrix_form


def solve_with_rounding(
    problem: Problem, engine: str = "highs", presolve: bool = True
) -> Solution:
    """Relax-and-round. Status is ``FEASIBLE`` at best (never OPTIMAL)."""
    start = time.monotonic()
    form = to_matrix_form(problem)
    relax = solve_lp_arrays(
        form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
        form.lb, form.ub, engine=engine, presolve=presolve,
    )

    def make_stats() -> SolveStats:
        return SolveStats(
            backend="rounding",
            elapsed_seconds=time.monotonic() - start,
            lp_iterations=relax.iterations,
            phase1_iterations=relax.phase1_iterations,
            phase2_iterations=relax.phase2_iterations,
            bland_switches=relax.bland_switches,
            degenerate_pivots=relax.degenerate_pivots,
        )

    if relax.status == "infeasible":
        return Solution(SolveStatus.INFEASIBLE, solver="rounding",
                        message="relaxation infeasible", stats=make_stats())
    if relax.status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, solver="rounding",
                        message="relaxation unbounded", stats=make_stats())
    if relax.status != "optimal":
        return Solution(SolveStatus.ERROR, solver="rounding",
                        message=relax.status, stats=make_stats())

    x = relax.x.copy()
    integral = form.integrality.astype(bool)
    x[integral] = np.round(x[integral])
    # Clamp rounded values back into bounds.
    x = np.clip(x, form.lb, form.ub)
    values = {var: float(x[i]) for i, var in enumerate(form.variables)}
    if not problem.is_feasible(values, tol=1e-6):
        return Solution(
            SolveStatus.ERROR,
            solver="rounding",
            message="rounded point infeasible; use an exact backend",
            stats=make_stats(),
        )
    objective = problem.evaluate_objective(values)
    stats = make_stats()
    stats.incumbent = objective
    return Solution(
        status=SolveStatus.FEASIBLE,
        objective=objective,
        values=values,
        solver="rounding",
        iterations=relax.iterations,
        message="rounded LP relaxation",
        stats=stats,
    )
