"""Wave construction: turn a to-be plan into an executable project.

Ordering policy ("pilot-first, savers-early"): within the server budget
of each change window, groups are scheduled

1. smallest user base first for the opening wave (the pilot — limit
   blast radius while the runbook is unproven), then
2. by decreasing per-server monthly saving, so the project's savings
   accrue as early as possible.

Constraints honored per wave: the per-wave server budget (ops/bandwidth
limit) and shared-risk separation (two groups of one risk tag never
move in the same window — a failed change must not take out both).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.entities import ApplicationGroup, AsIsState
from ..core.plan import TransformationPlan
from .schedule import MigrationSchedule, Move, Wave

#: Seconds per hour × bits per byte shortcut: GB → hours at N Mbps.
_GB_TO_MEGABITS = 8_000.0


@dataclass(frozen=True)
class MigrationConfig:
    """Project parameters.

    ``dual_run_days`` prices the overlap period in which a moved group
    runs in both locations for validation before cut-over.
    """

    max_servers_per_wave: int = 200
    move_cost_per_server: float = 150.0
    data_gb_per_server: float = 200.0
    bandwidth_mbps: float = 1000.0
    wave_interval_days: float = 14.0
    dual_run_days: float = 2.0
    pilot_wave: bool = True

    def __post_init__(self) -> None:
        if self.max_servers_per_wave <= 0:
            raise ValueError("wave budget must be positive")
        for label, value in (
            ("move cost", self.move_cost_per_server),
            ("data per server", self.data_gb_per_server),
            ("dual-run days", self.dual_run_days),
        ):
            if value < 0:
                raise ValueError(f"negative {label}")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.wave_interval_days <= 0:
            raise ValueError("wave interval must be positive")


def _per_server_saving(
    state: AsIsState, plan: TransformationPlan, group: ApplicationGroup
) -> float:
    """Rough per-server monthly saving of moving one group.

    Compares the as-is host's undiscounted per-server bill with the
    destination's at its planned occupancy — a prioritization heuristic,
    not an accounting statement.
    """
    params = state.params
    destination = state.target(plan.placement[group.name])
    occupancy = plan.usage[destination.name].total_servers
    dest_cost = destination.per_server_monthly_cost(params, occupancy=occupancy)
    if group.current_datacenter:
        try:
            source = state.current(group.current_datacenter)
        except KeyError:
            return 0.0
        source_cost = source.per_server_monthly_cost(params, occupancy=1)
        return source_cost - dest_cost
    return 0.0


def _ordered_groups(
    state: AsIsState, plan: TransformationPlan, config: MigrationConfig
) -> list[ApplicationGroup]:
    groups = list(state.app_groups)
    groups.sort(
        key=lambda g: -_per_server_saving(state, plan, g) * g.servers
    )
    if config.pilot_wave and groups:
        pilot = min(groups, key=lambda g: (g.total_users, g.servers))
        groups.remove(pilot)
        groups.insert(0, pilot)
    return groups


def _dual_run_cost(
    state: AsIsState, plan: TransformationPlan, group: ApplicationGroup,
    config: MigrationConfig,
) -> float:
    """Cost of running the group at the destination during validation."""
    destination = state.target(plan.placement[group.name])
    occupancy = plan.usage[destination.name].total_servers
    per_server_day = destination.per_server_monthly_cost(
        state.params, occupancy=occupancy
    ) / 30.0
    return per_server_day * group.servers * config.dual_run_days


def plan_migration(
    state: AsIsState,
    plan: TransformationPlan,
    config: MigrationConfig | None = None,
    monthly_saving: float | None = None,
) -> MigrationSchedule:
    """Build the phased migration schedule for ``plan``.

    ``monthly_saving`` (for the payback computation) defaults to the
    difference between the evaluated as-is bill and the plan's bill
    when the state carries a current estate; otherwise it must be given.
    """
    config = config or MigrationConfig()

    if monthly_saving is None:
        if state.current_datacenters and all(
            g.current_datacenter for g in state.app_groups
        ):
            from ..baselines.asis import asis_plan

            monthly_saving = asis_plan(state).total_cost - plan.total_cost
        else:
            raise ValueError(
                "monthly_saving must be provided when the state has no "
                "fully-specified current estate"
            )

    schedule = MigrationSchedule(
        monthly_saving=monthly_saving,
        wave_interval_days=config.wave_interval_days,
    )

    pending = _ordered_groups(state, plan, config)
    wave_index = 0
    while pending:
        wave_index += 1
        wave = Wave(index=wave_index)
        risk_tags: set[str] = set()
        budget = config.max_servers_per_wave
        if config.pilot_wave and wave_index == 1:
            budget = min(budget, max(pending[0].servers, 1))
        for group in pending:
            oversized_alone = group.servers > config.max_servers_per_wave and not wave.moves
            risk_clash = group.risk_group is not None and group.risk_group in risk_tags
            if risk_clash or (group.servers > budget and not oversized_alone):
                continue
            wave.moves.append(
                Move(
                    group=group.name,
                    servers=group.servers,
                    from_site=group.current_datacenter,
                    to_site=plan.placement[group.name],
                    data_gb=group.servers * config.data_gb_per_server,
                    move_cost=group.servers * config.move_cost_per_server,
                )
            )
            wave.dual_run_cost += _dual_run_cost(state, plan, group, config)
            budget -= group.servers
            if group.risk_group is not None:
                risk_tags.add(group.risk_group)
            if oversized_alone:
                break  # an oversized group travels in its own window
        if not wave.moves:
            # Defensive: should be unreachable (oversized groups get a
            # dedicated wave), but never loop forever on a logic slip.
            raise RuntimeError("migration planning made no progress")
        wave.transfer_hours = (
            wave.data_gb * _GB_TO_MEGABITS / config.bandwidth_mbps / 3600.0
        )
        schedule.waves.append(wave)
        done = {m.group for m in wave.moves}
        pending = [g for g in pending if g.name not in done]

    return schedule
