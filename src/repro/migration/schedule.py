"""Migration schedule data model.

A transformation project is executed in *waves*: batches of application
groups moved together within one change window.  The schedule records,
per wave, what moves, how long the bulk transfer takes, and what the
move costs; project-level views (cumulative cost, payback point) hang
off the whole schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Move:
    """One application group's relocation."""

    group: str
    servers: int
    from_site: str | None
    to_site: str
    data_gb: float
    move_cost: float

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise ValueError("a move involves at least one server")
        if self.data_gb < 0 or self.move_cost < 0:
            raise ValueError("negative move figures")


@dataclass
class Wave:
    """A batch of moves executed in one change window."""

    index: int
    moves: list[Move] = field(default_factory=list)
    transfer_hours: float = 0.0
    dual_run_cost: float = 0.0

    @property
    def servers(self) -> int:
        return sum(m.servers for m in self.moves)

    @property
    def groups(self) -> list[str]:
        return [m.group for m in self.moves]

    @property
    def data_gb(self) -> float:
        return sum(m.data_gb for m in self.moves)

    @property
    def move_cost(self) -> float:
        return sum(m.move_cost for m in self.moves) + self.dual_run_cost


@dataclass
class MigrationSchedule:
    """The full phased plan plus its business case.

    ``monthly_saving`` is the steady-state difference between the as-is
    and to-be bills; the payback point is when cumulative savings repay
    the one-off migration spend.
    """

    waves: list[Wave] = field(default_factory=list)
    monthly_saving: float = 0.0
    wave_interval_days: float = 14.0

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def total_servers(self) -> int:
        return sum(w.servers for w in self.waves)

    @property
    def total_move_cost(self) -> float:
        return sum(w.move_cost for w in self.waves)

    @property
    def duration_days(self) -> float:
        """Calendar length of the project (waves spaced by the interval)."""
        if not self.waves:
            return 0.0
        return self.num_waves * self.wave_interval_days

    @property
    def payback_months(self) -> float:
        """Months of steady-state savings needed to repay migration costs.

        ``inf`` when the to-be state does not actually save money.
        """
        if self.monthly_saving <= 0:
            return math.inf
        return self.total_move_cost / self.monthly_saving

    def cumulative_savings_curve(self, months: int) -> list[float]:
        """Net position month by month: savings accrued minus move spend.

        Move spend lands in the month its wave executes; savings from a
        moved group start the month after its wave completes, modeled
        proportionally to moved servers.
        """
        if months < 0:
            raise ValueError("months cannot be negative")
        total_servers = self.total_servers or 1
        days_per_month = 30.0
        curve: list[float] = []
        net = 0.0
        moved_fraction = 0.0
        for month in range(1, months + 1):
            # Savings accrue from waves completed in *earlier* months
            # only — snapshot the fraction before this month's waves
            # execute, so a wave landing in month m first saves in m+1.
            accruing_fraction = moved_fraction
            for wave in self.waves:
                wave_month = math.ceil(
                    wave.index * self.wave_interval_days / days_per_month
                ) or 1
                if wave_month == month:
                    net -= wave.move_cost
                    moved_fraction += wave.servers / total_servers
            net += self.monthly_saving * min(accruing_fraction, 1.0)
            curve.append(net)
        return curve

    def render(self) -> str:
        """Human-readable project timetable."""
        lines = [
            f"Migration plan: {self.num_waves} waves, "
            f"{self.total_servers} servers, "
            f"${self.total_move_cost:,.0f} one-off cost",
        ]
        header = f"{'wave':>5} {'groups':>7} {'servers':>8} {'data (GB)':>10} {'transfer':>9} {'cost':>12}"
        lines.append(header)
        for wave in self.waves:
            lines.append(
                f"{wave.index:>5d} {len(wave.moves):>7d} {wave.servers:>8d} "
                f"{wave.data_gb:>10,.0f} {wave.transfer_hours:>8.1f}h "
                f"${wave.move_cost:>11,.0f}"
            )
        if self.monthly_saving > 0:
            lines.append(
                f"steady-state saving ${self.monthly_saving:,.0f}/month → "
                f"payback in {self.payback_months:.1f} months"
            )
        else:
            lines.append("warning: the to-be state does not reduce the monthly bill")
        return "\n".join(lines)
