"""Phased migration planning: waves, transfer time, payback analysis."""

from .planner import MigrationConfig, plan_migration
from .schedule import MigrationSchedule, Move, Wave

__all__ = [
    "MigrationConfig",
    "MigrationSchedule",
    "Move",
    "Wave",
    "plan_migration",
]
