"""What-if analysis: cost sensitivity and price-noise robustness."""

from .perturb import (
    DIMENSIONS,
    perturb_prices,
    placement_churn,
    scale_dimension,
)
from .robustness import RobustnessResult, RobustnessSample, run_robustness
from .sensitivity import (
    DEFAULT_MULTIPLIERS,
    SensitivityPoint,
    SensitivityResult,
    run_sensitivity,
)

__all__ = [
    "DEFAULT_MULTIPLIERS",
    "DIMENSIONS",
    "RobustnessResult",
    "RobustnessSample",
    "SensitivityPoint",
    "SensitivityResult",
    "perturb_prices",
    "placement_churn",
    "run_robustness",
    "run_sensitivity",
    "scale_dimension",
]
