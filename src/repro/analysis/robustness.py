"""Robustness of a plan to price-estimate error.

Consolidation engagements plan against price sheets that are partly
guesses.  This study asks: if the true prices differ from the estimates
by lognormal noise, how much worse is the plan we committed to than the
plan we *would* have chosen knowing the truth?

For each of ``samples`` perturbed worlds it reports the **regret**
(committed plan's cost under true prices minus the re-optimized
optimum) and the placement churn of the re-optimized plan — low regret
with high churn means many near-ties, low regret with low churn means
the plan is structurally stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import statistics

from ..core.entities import AsIsState
from ..core.plan import evaluate_plan
from ..core.planner import ETransformPlanner, PlannerOptions
from .perturb import perturb_prices, placement_churn


@dataclass
class RobustnessSample:
    """One perturbed world."""

    seed: int
    committed_cost: float
    reoptimized_cost: float
    churn: float

    @property
    def regret(self) -> float:
        return self.committed_cost - self.reoptimized_cost

    @property
    def relative_regret(self) -> float:
        if self.reoptimized_cost == 0:
            return 0.0
        return self.regret / self.reoptimized_cost


@dataclass
class RobustnessResult:
    """Aggregate over all sampled worlds."""

    sigma: float
    samples: list[RobustnessSample] = field(default_factory=list)

    @property
    def mean_relative_regret(self) -> float:
        return statistics.mean(s.relative_regret for s in self.samples)

    @property
    def max_relative_regret(self) -> float:
        return max(s.relative_regret for s in self.samples)

    @property
    def mean_churn(self) -> float:
        return statistics.mean(s.churn for s in self.samples)

    def render(self) -> str:
        lines = [
            f"Robustness under ±{self.sigma:.0%} lognormal price noise "
            f"({len(self.samples)} worlds)",
            f"mean regret: {self.mean_relative_regret:.1%}   "
            f"max regret: {self.max_relative_regret:.1%}   "
            f"mean churn: {self.mean_churn:.0%}",
        ]
        return "\n".join(lines)


def run_robustness(
    state: AsIsState,
    sigma: float = 0.15,
    samples: int = 10,
    options: PlannerOptions | None = None,
    base_seed: int = 100,
) -> RobustnessResult:
    """Monte-Carlo regret study of the committed plan.

    The committed plan is optimized on the unperturbed state; each
    sample re-prices the world with seed ``base_seed + i``, evaluates
    the committed placement there, and re-optimizes for comparison.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    options = options or PlannerOptions(backend="auto")

    committed = ETransformPlanner(state, options).build_plan()
    result = RobustnessResult(sigma=sigma)
    for i in range(samples):
        seed = base_seed + i
        world = perturb_prices(state, sigma=sigma, seed=seed)
        committed_there = evaluate_plan(
            world,
            committed.placement,
            secondary=committed.secondary,
            wan_model=options.wan_model,
        )
        reoptimized = ETransformPlanner(world, options).build_plan()
        result.samples.append(
            RobustnessSample(
                seed=seed,
                committed_cost=committed_there.total_cost,
                reoptimized_cost=reoptimized.total_cost,
                churn=placement_churn(committed.placement, reoptimized.placement),
            )
        )
    return result
