"""State perturbation utilities for sensitivity and robustness studies.

Everything returns a *new* state; input states are never mutated, so a
study can fan out dozens of variants from one baseline.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.entities import AsIsState, DataCenter

#: Cost dimensions a study may scale.
DIMENSIONS = ("space", "power", "labor", "wan", "fixed", "vpn")


def _scaled_datacenter(dc: DataCenter, dimension: str, factor: float) -> DataCenter:
    if dimension == "space":
        return replace(dc, space_cost=dc.space_cost.scaled(factor))
    if dimension == "power":
        return replace(dc, power_cost_per_kw=dc.power_cost_per_kw * factor)
    if dimension == "labor":
        return replace(dc, labor_cost_per_admin=dc.labor_cost_per_admin * factor)
    if dimension == "wan":
        return replace(dc, wan_cost_per_mb=dc.wan_cost_per_mb * factor)
    if dimension == "fixed":
        return replace(dc, fixed_monthly_cost=dc.fixed_monthly_cost * factor)
    if dimension == "vpn":
        return replace(
            dc, vpn_link_cost={k: v * factor for k, v in dc.vpn_link_cost.items()}
        )
    raise ValueError(f"unknown cost dimension {dimension!r}; choose from {DIMENSIONS}")


def scale_dimension(state: AsIsState, dimension: str, factor: float) -> AsIsState:
    """Scale one cost dimension of every *target* site by ``factor``.

    The current estate is left untouched — sensitivity studies ask how
    the *plan* reacts, and the as-is bill is a sunk benchmark.
    """
    if factor < 0:
        raise ValueError("scale factor cannot be negative")
    targets = [_scaled_datacenter(dc, dimension, factor) for dc in state.target_datacenters]
    return replace(state, target_datacenters=targets)


def perturb_prices(
    state: AsIsState,
    sigma: float = 0.15,
    seed: int = 0,
    dimensions: tuple[str, ...] = ("space", "power", "labor", "wan", "fixed"),
) -> AsIsState:
    """Apply independent lognormal noise to every site's cost figures.

    Models estimate error in the price sheets a planning engagement is
    built on: each target site's cost in each dimension is multiplied by
    ``exp(N(0, sigma))`` (median 1, i.e. unbiased).
    """
    if sigma < 0:
        raise ValueError("sigma cannot be negative")
    rng = np.random.default_rng(seed)
    targets = []
    for dc in state.target_datacenters:
        perturbed = dc
        for dimension in dimensions:
            factor = float(rng.lognormal(mean=0.0, sigma=sigma))
            perturbed = _scaled_datacenter(perturbed, dimension, factor)
        targets.append(perturbed)
    return replace(state, target_datacenters=targets)


def placement_churn(a: dict[str, str], b: dict[str, str]) -> float:
    """Fraction of groups placed differently by two plans.

    Raises when the plans do not cover the same groups — comparing
    placements of different estates is a bug, not a zero.
    """
    if set(a) != set(b):
        raise ValueError("plans cover different application groups")
    if not a:
        return 0.0
    moved = sum(1 for name in a if a[name] != b[name])
    return moved / len(a)
