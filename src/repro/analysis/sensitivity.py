"""One-at-a-time cost-dimension sensitivity (generalizes paper §VI-D–F).

Sweep a multiplier over one cost dimension, re-optimize at every point,
and record how the plan responds: total cost, component split, number of
sites used, and placement churn relative to the baseline (multiplier 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.entities import AsIsState
from ..core.planner import ETransformPlanner, PlannerOptions
from .perturb import DIMENSIONS, placement_churn, scale_dimension

#: Default multiplier sweep: halve … quadruple the dimension.
DEFAULT_MULTIPLIERS = (0.5, 0.75, 1.0, 1.5, 2.0, 4.0)


@dataclass
class SensitivityPoint:
    """Plan response at one multiplier."""

    multiplier: float
    total_cost: float
    component_cost: float
    datacenters_used: int
    latency_violations: int
    churn_vs_baseline: float


@dataclass
class SensitivityResult:
    """The full sweep over one dimension."""

    dimension: str
    points: list[SensitivityPoint] = field(default_factory=list)

    def multipliers(self) -> list[float]:
        return [p.multiplier for p in self.points]

    def total_costs(self) -> list[float]:
        return [p.total_cost for p in self.points]

    @property
    def elasticity(self) -> float:
        """Relative cost change per relative price change, secant form.

        Computed between the sweep's extremes:
        ``(ΔC / C_baseline) / (Δm / 1)``.  0 means the dimension does
        not matter; 1 means it is passed through in full.
        """
        if len(self.points) < 2:
            raise ValueError("elasticity needs at least two sweep points")
        lo = self.points[0]
        hi = self.points[-1]
        baseline = next(
            (p for p in self.points if p.multiplier == 1.0), self.points[0]
        )
        dm = hi.multiplier - lo.multiplier
        if dm == 0:
            raise ValueError("degenerate sweep")
        return (hi.total_cost - lo.total_cost) / baseline.total_cost / dm

    def render(self) -> str:
        lines = [f"Sensitivity — {self.dimension} cost"]
        lines.append(
            f"{'×':>6} {'total':>14} {'dimension':>12} {'DCs':>4} {'viol':>5} {'churn':>6}"
        )
        for p in self.points:
            lines.append(
                f"{p.multiplier:>6.2f} ${p.total_cost:>13,.0f} "
                f"${p.component_cost:>11,.0f} {p.datacenters_used:>4d} "
                f"{p.latency_violations:>5d} {p.churn_vs_baseline:>6.0%}"
            )
        lines.append(f"elasticity ≈ {self.elasticity:+.2f}")
        return "\n".join(lines)


def _component_cost(plan, dimension: str) -> float:
    mapping = {
        "space": plan.breakdown.space,
        "power": plan.breakdown.power,
        "labor": plan.breakdown.labor,
        "wan": plan.breakdown.wan,
        "vpn": plan.breakdown.wan,
        "fixed": plan.breakdown.fixed,
    }
    return mapping[dimension]


def run_sensitivity(
    state: AsIsState,
    dimension: str,
    multipliers: tuple[float, ...] = DEFAULT_MULTIPLIERS,
    options: PlannerOptions | None = None,
) -> SensitivityResult:
    """Sweep ``dimension`` and re-optimize at every multiplier."""
    if dimension not in DIMENSIONS:
        raise ValueError(f"unknown cost dimension {dimension!r}; choose from {DIMENSIONS}")
    if not multipliers:
        raise ValueError("empty multiplier sweep")
    options = options or PlannerOptions(backend="auto")

    baseline_plan = ETransformPlanner(state, options).build_plan()
    result = SensitivityResult(dimension=dimension)
    for multiplier in sorted(multipliers):
        if multiplier == 1.0:
            plan = baseline_plan
        else:
            variant = scale_dimension(state, dimension, multiplier)
            plan = ETransformPlanner(variant, options).build_plan()
        result.points.append(
            SensitivityPoint(
                multiplier=multiplier,
                total_cost=plan.total_cost,
                component_cost=_component_cost(plan, dimension),
                datacenters_used=len(plan.datacenters_used),
                latency_violations=plan.latency_violations,
                churn_vs_baseline=placement_churn(
                    baseline_plan.placement, plan.placement
                ),
            )
        )
    return result
