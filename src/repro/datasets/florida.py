"""Case-study dataset 2: the Florida state government.

Table II: 43 as-is data centers, 10 targets, 3907 servers, 190
application groups.  As in the paper, group/server distributions are
borrowed from enterprise1 (the Gartner study lacks them); the user
population scales with the server estate.
"""

from __future__ import annotations

from ..core.entities import AsIsState
from .builders import EnterpriseSpec, build_enterprise_state
from .enterprise1 import ENTERPRISE1_USERS

#: Users scaled by the server ratio vs enterprise1 (3907 / 1070).
FLORIDA_USERS = round(ENTERPRISE1_USERS * 3907 / 1070)


def florida_spec(seed: int = 2, scale: float = 1.0) -> EnterpriseSpec:
    """The Table II "Florida" row as a generator spec."""
    return EnterpriseSpec(
        name="florida",
        app_groups=190,
        total_servers=3907,
        current_datacenters=43,
        target_datacenters=10,
        total_users=float(FLORIDA_USERS),
        seed=seed,
        scale=scale,
    )


def load_florida(seed: int = 2, scale: float = 1.0) -> AsIsState:
    """Build the Florida as-is state (deterministic per seed)."""
    return build_enterprise_state(florida_spec(seed=seed, scale=scale))
