"""Statistical distributions used to synthesize enterprise estates.

Real estates are heavy-tailed: a few application groups own tens of
servers (the Fig. 1 monster), most own a handful.  We model group sizes
with a lognormal draw renormalized to an exact server total, and user
populations with the paper's five-class affinity structure.
"""

from __future__ import annotations

import numpy as np


def heavy_tailed_sizes(
    rng: np.random.Generator,
    count: int,
    total: int,
    sigma: float = 1.0,
    minimum: int = 1,
) -> list[int]:
    """Draw ``count`` positive integers with heavy tail summing to ``total``.

    Lognormal weights are scaled to the target sum; rounding residue is
    distributed to the largest entries so the exact total is preserved.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if total < count * minimum:
        raise ValueError(
            f"total {total} cannot cover {count} entries of at least {minimum}"
        )
    weights = rng.lognormal(mean=0.0, sigma=sigma, size=count)
    available = total - count * minimum
    scaled = weights / weights.sum() * available
    sizes = np.floor(scaled).astype(int) + minimum
    residue = total - int(sizes.sum())
    # Hand the leftover units to the largest entries, one each.
    order = np.argsort(-scaled)
    for i in range(residue):
        sizes[order[i % count]] += 1
    assert int(sizes.sum()) == total
    return [int(s) for s in sizes]


def affinity_class_users(
    rng: np.random.Generator,
    group_index: int,
    total_users: float,
    locations: list[str],
) -> dict[str, float]:
    """Paper's five user-affinity classes, assigned round-robin.

    Classes 0..len(locations)-1 put *all* users in one location; the
    last class spreads them equally across all locations.
    """
    if total_users < 0:
        raise ValueError("total_users cannot be negative")
    n_classes = len(locations) + 1
    cls = group_index % n_classes
    if cls < len(locations):
        return {locations[cls]: float(total_users)}
    share = float(total_users) / len(locations)
    return {loc: share for loc in locations}


def proportional_split(
    rng: np.random.Generator,
    total: float,
    weights: np.ndarray,
) -> np.ndarray:
    """Split ``total`` proportionally to ``weights`` (float shares)."""
    weights = np.asarray(weights, dtype=float)
    if (weights < 0).any():
        raise ValueError("weights cannot be negative")
    s = weights.sum()
    if s == 0:
        return np.zeros_like(weights)
    return weights / s * total


def assign_groups_to_sites(
    rng: np.random.Generator,
    group_sizes: list[int],
    site_count: int,
    concentration: float = 0.6,
) -> list[int]:
    """Assign each group to one of ``site_count`` as-is sites.

    Site popularity is itself heavy-tailed (a Zipf-like weighting with
    the given concentration), mirroring the few-big-many-small estates
    in Fig. 2.  Returns a site index per group.
    """
    if site_count <= 0:
        raise ValueError("site_count must be positive")
    ranks = np.arange(1, site_count + 1)
    weights = ranks ** (-concentration)
    weights /= weights.sum()
    assignments = rng.choice(site_count, size=len(group_sizes), p=weights)
    # Guarantee every site hosts at least one group when possible, so the
    # generated as-is estate really has `site_count` active locations.
    if len(group_sizes) >= site_count:
        used = set(int(a) for a in assignments)
        empty = [s for s in range(site_count) if s not in used]
        if empty:
            donors = rng.permutation(len(group_sizes))
            for site, donor in zip(empty, donors):
                assignments[donor] = site
    return [int(a) for a in assignments]


def user_data_volume(
    rng: np.random.Generator,
    users: float,
    mb_per_user: tuple[float, float] = (300.0, 1200.0),
) -> float:
    """Monthly megabits exchanged, proportional to users with noise."""
    low, high = mb_per_user
    if low > high or low < 0:
        raise ValueError(f"invalid per-user range {mb_per_user}")
    return float(users) * float(rng.uniform(low, high))
