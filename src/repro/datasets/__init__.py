"""Synthetic dataset generators for the three case studies and the
parameter-study scenarios."""

from .builders import DEFAULT_PENALTY, EnterpriseSpec, build_enterprise_state
from .enterprise1 import ENTERPRISE1_USERS, enterprise1_spec, load_enterprise1
from .federal import FEDERAL_USERS, federal_spec, load_federal
from .florida import FLORIDA_USERS, florida_spec, load_florida
from .presets import hp_spec, load_hp, load_uk_government, uk_government_spec
from .pricing import DEFAULT_RANGES, PriceRanges
from .scenarios import (
    LINE_USER_LOCATIONS,
    ONLINE_TRACE_PROFILES,
    latency_line_scenario,
    online_line_scenario,
    online_line_trace,
    tradeoff_line_scenario,
)

__all__ = [
    "DEFAULT_PENALTY",
    "DEFAULT_RANGES",
    "ENTERPRISE1_USERS",
    "EnterpriseSpec",
    "FEDERAL_USERS",
    "FLORIDA_USERS",
    "LINE_USER_LOCATIONS",
    "ONLINE_TRACE_PROFILES",
    "PriceRanges",
    "build_enterprise_state",
    "enterprise1_spec",
    "federal_spec",
    "florida_spec",
    "hp_spec",
    "load_hp",
    "load_uk_government",
    "uk_government_spec",
    "latency_line_scenario",
    "load_enterprise1",
    "load_federal",
    "load_florida",
    "online_line_scenario",
    "online_line_trace",
    "tradeoff_line_scenario",
]
