"""Planar geography: distances, latency, and simple topologies.

Case-study latencies in the paper come in *classes* (a data center is
"close to" one user location: 5 ms to it, 20 ms to the rest; or central:
10 ms to all).  The parameter studies (Figs. 7–10) instead use a line of
data centers with latency growing along the line.  This module provides
the geometric primitives for both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Effective one-way signal propagation through fiber, ms per km
#: (≈ 2/3 c, plus routing overhead folded into PER_KM).
LATENCY_MS_PER_KM = 0.01
#: Fixed last-mile / stack overhead added to every path, in ms.
LATENCY_BASE_MS = 1.0


@dataclass(frozen=True)
class Point:
    """A planar location in kilometres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


def distance_km(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between two planar points."""
    return math.hypot(ax - bx, ay - by)


def latency_ms(
    distance: float,
    base_ms: float = LATENCY_BASE_MS,
    per_km: float = LATENCY_MS_PER_KM,
) -> float:
    """Distance → one-way network latency in milliseconds."""
    if distance < 0:
        raise ValueError("distance cannot be negative")
    return base_ms + per_km * distance


def line_positions(count: int, spacing_km: float) -> list[Point]:
    """``count`` points on a line, ``spacing_km`` apart (Figs. 7–10 setup)."""
    if count <= 0:
        raise ValueError("count must be positive")
    if spacing_km <= 0:
        raise ValueError("spacing must be positive")
    return [Point(i * spacing_km, 0.0) for i in range(count)]


def corner_positions(side_km: float) -> list[Point]:
    """Four user-location 'corners' of a square region (case studies)."""
    if side_km <= 0:
        raise ValueError("side must be positive")
    return [
        Point(0.0, 0.0),
        Point(side_km, 0.0),
        Point(0.0, side_km),
        Point(side_km, side_km),
    ]


def class_latencies(
    close_to: int | None,
    locations: list[str],
    near_ms: float = 5.0,
    far_ms: float = 20.0,
    central_ms: float = 10.0,
) -> dict[str, float]:
    """Paper's five data-center latency classes.

    ``close_to=k`` gives ``near_ms`` to location *k* and ``far_ms`` to the
    others; ``close_to=None`` is the central class at ``central_ms`` to all.
    """
    if close_to is None:
        return {loc: central_ms for loc in locations}
    if not 0 <= close_to < len(locations):
        raise ValueError(f"close_to index {close_to} out of range")
    return {
        loc: (near_ms if idx == close_to else far_ms)
        for idx, loc in enumerate(locations)
    }
