"""Parameter-study fixtures: the 10-data-center line (Figs. 7–10).

The paper's sensitivity experiments all share one synthetic topology:
ten data centers, *location 0* through *location 9*, laid out on a line
with latency growing away from location 0, space cost growing with the
location index, and every other cost identical.  Users sit near
locations 0 and 9 only.  Two variants:

* :func:`latency_line_scenario` — enterprise1-shaped application groups
  with a tunable latency-penalty rate and user split (Figs. 7 and 8);
* :func:`tradeoff_line_scenario` — many one-server groups, all users at
  location 9, dedicated-VPN WAN pricing (Figs. 9 and 10).
"""

from __future__ import annotations

import numpy as np

from ..core.costs import StepCostFunction
from ..core.entities import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    UserLocation,
)
from ..core.latency import NO_PENALTY, LatencyPenaltyFunction
from .distributions import heavy_tailed_sizes
from .geography import latency_ms, line_positions

#: Names of the two user concentrations on the line.
LINE_USER_LOCATIONS = ("user_west", "user_east")


def _line_datacenters(
    n_datacenters: int,
    spacing_km: float,
    capacity: int,
    space_base: float,
    space_step_per_location: float,
    power_cost_per_kw: float,
    labor_cost_per_admin: float,
    wan_cost_per_mb: float,
    vpn_base: float,
    vpn_per_km: float,
    space_growth: float = 0.0,
    vpn_per_km_sq: float = 0.0,
) -> list[DataCenter]:
    """Build the line of data centers with index-graded space cost.

    ``space_step_per_location`` gives a linear ramp; a non-zero
    ``space_growth`` compounds geometrically instead (used by the
    space/WAN tradeoff study, whose paper figure is clearly convex).
    ``vpn_per_km_sq`` adds a long-haul premium to link prices — real
    dedicated circuits price superlinearly with distance.
    """

    def link_price(distance: float) -> float:
        return vpn_base + vpn_per_km * distance + vpn_per_km_sq * distance**2

    positions = line_positions(n_datacenters, spacing_km)
    west = positions[0]
    east = positions[-1]
    datacenters = []
    for i, pos in enumerate(positions):
        if space_growth > 0.0:
            space_price = space_base * (1.0 + space_growth) ** i
        else:
            space_price = space_base + space_step_per_location * i
        lat_west = latency_ms(pos.distance_to(west))
        lat_east = latency_ms(pos.distance_to(east))
        datacenters.append(
            DataCenter(
                name=f"location{i}",
                capacity=capacity,
                space_cost=StepCostFunction.flat(space_price),
                power_cost_per_kw=power_cost_per_kw,
                labor_cost_per_admin=labor_cost_per_admin,
                wan_cost_per_mb=wan_cost_per_mb,
                latency_to_users={
                    LINE_USER_LOCATIONS[0]: lat_west,
                    LINE_USER_LOCATIONS[1]: lat_east,
                },
                vpn_link_cost={
                    LINE_USER_LOCATIONS[0]: link_price(pos.distance_to(west)),
                    LINE_USER_LOCATIONS[1]: link_price(pos.distance_to(east)),
                },
                x=pos.x,
                y=pos.y,
            )
        )
    return datacenters


def latency_line_scenario(
    penalty_per_band: float,
    fraction_at_west: float,
    n_groups: int = 190,
    total_servers: int = 1070,
    total_users: float = 2000.0,
    n_datacenters: int = 10,
    spacing_km: float = 450.0,
    capacity: int = 2500,
    threshold_ms: float = 10.0,
    band_width_ms: float = 10.0,
    space_base: float = 40.0,
    space_step_per_location: float = 40.0,
    space_growth: float = 0.0,
    seed: int = 7,
) -> AsIsState:
    """Fig. 7 / Fig. 8 fixture.

    Enterprise1-shaped groups whose users split ``fraction_at_west`` /
    ``1 - fraction_at_west`` between the two ends of the line.  The
    latency constraint is the banded step function at 10 ms; sweeping
    ``penalty_per_band`` from 0 upward reproduces the cost/space/latency
    curves of Fig. 7.
    """
    if not 0.0 <= fraction_at_west <= 1.0:
        raise ValueError("fraction_at_west must be within [0, 1]")
    if penalty_per_band < 0:
        raise ValueError("penalty cannot be negative")
    rng = np.random.default_rng(seed)
    sizes = heavy_tailed_sizes(rng, n_groups, total_servers)
    per_group_users = total_users / n_groups
    if penalty_per_band > 0:
        penalty = LatencyPenaltyFunction.banded(
            threshold_ms, band_width_ms, penalty_per_band, bands=12
        )
    else:
        penalty = NO_PENALTY

    groups = []
    for i, servers in enumerate(sizes):
        users = {
            LINE_USER_LOCATIONS[0]: per_group_users * fraction_at_west,
            LINE_USER_LOCATIONS[1]: per_group_users * (1.0 - fraction_at_west),
        }
        users = {loc: count for loc, count in users.items() if count > 0}
        groups.append(
            ApplicationGroup(
                name=f"ag{i:04d}",
                servers=servers,
                monthly_data_mb=per_group_users * 100.0,
                users=users,
                latency_penalty=penalty,
            )
        )

    datacenters = _line_datacenters(
        n_datacenters=n_datacenters,
        spacing_km=spacing_km,
        capacity=capacity,
        space_base=space_base,
        space_step_per_location=space_step_per_location,
        space_growth=space_growth,
        power_cost_per_kw=80.0,
        labor_cost_per_admin=6000.0,
        wan_cost_per_mb=0.05,
        vpn_base=200.0,
        vpn_per_km=0.25,
    )
    positions = line_positions(n_datacenters, spacing_km)
    user_locations = [
        UserLocation(LINE_USER_LOCATIONS[0], positions[0].x, positions[0].y),
        UserLocation(LINE_USER_LOCATIONS[1], positions[-1].x, positions[-1].y),
    ]
    return AsIsState(
        name="latency-line",
        app_groups=groups,
        target_datacenters=datacenters,
        user_locations=user_locations,
        params=CostParameters(),
    )


def tradeoff_line_scenario(
    n_groups: int = 700,
    n_datacenters: int = 10,
    capacity: int = 100,
    spacing_km: float = 450.0,
    servers_per_group: int = 1,
    data_mb_per_group: float = 60_000.0,
    vpn_link_capacity_mb: float = 100_000.0,
    space_base: float = 5.0,
    space_growth: float = 1.45,
    vpn_base: float = 20.0,
    vpn_per_km: float = 0.20,
    vpn_per_km_sq: float = 1.1e-3,
    seed: int = 9,
) -> AsIsState:
    """Fig. 9 / Fig. 10 fixture.

    Ten capacity-100 data centers; one-server application groups whose
    users all sit at location 9 and connect over dedicated VPN links, so
    WAN cost falls toward location 9 while (geometrically growing) space
    cost rises — the tradeoff whose total is minimized in the middle of
    the line.
    """
    if n_groups < 0:
        raise ValueError("n_groups cannot be negative")
    groups = []
    users_per_group = 10.0
    for i in range(n_groups):
        groups.append(
            ApplicationGroup(
                name=f"ag{i:04d}",
                servers=servers_per_group,
                monthly_data_mb=data_mb_per_group,
                users={LINE_USER_LOCATIONS[1]: users_per_group},
                latency_penalty=NO_PENALTY,
            )
        )

    datacenters = _line_datacenters(
        n_datacenters=n_datacenters,
        spacing_km=spacing_km,
        capacity=capacity,
        space_base=space_base,
        space_step_per_location=0.0,
        space_growth=space_growth,
        power_cost_per_kw=30.0,
        labor_cost_per_admin=2600.0,
        wan_cost_per_mb=0.05,
        vpn_base=vpn_base,
        vpn_per_km=vpn_per_km,
        vpn_per_km_sq=vpn_per_km_sq,
    )
    positions = line_positions(n_datacenters, spacing_km)
    user_locations = [
        UserLocation(LINE_USER_LOCATIONS[0], positions[0].x, positions[0].y),
        UserLocation(LINE_USER_LOCATIONS[1], positions[-1].x, positions[-1].y),
    ]
    params = CostParameters(vpn_link_capacity_mb=vpn_link_capacity_mb)
    return AsIsState(
        name="tradeoff-line",
        app_groups=groups,
        target_datacenters=datacenters,
        user_locations=user_locations,
        params=params,
    )
