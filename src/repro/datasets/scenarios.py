"""Parameter-study fixtures: the 10-data-center line (Figs. 7–10).

The paper's sensitivity experiments all share one synthetic topology:
ten data centers, *location 0* through *location 9*, laid out on a line
with latency growing away from location 0, space cost growing with the
location index, and every other cost identical.  Users sit near
locations 0 and 9 only.  Two variants:

* :func:`latency_line_scenario` — enterprise1-shaped application groups
  with a tunable latency-penalty rate and user split (Figs. 7 and 8);
* :func:`tradeoff_line_scenario` — many one-server groups, all users at
  location 9, dedicated-VPN WAN pricing (Figs. 9 and 10);
* :func:`online_line_scenario` / :func:`online_line_trace` — a smaller
  line estate with capacity headroom plus canned load traces (diurnal,
  flash crowd, growth ramp, mixed) for the online re-planning loop.
"""

from __future__ import annotations

import numpy as np

from ..core.costs import StepCostFunction
from ..core.entities import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    UserLocation,
)
from ..core.latency import NO_PENALTY, LatencyPenaltyFunction
from ..sim.failures import Outage
from ..sim.load import (
    LoadEvent,
    diurnal_cycle,
    flash_crowd,
    growth_ramp,
    merge_traces,
)
from .distributions import heavy_tailed_sizes
from .geography import latency_ms, line_positions

#: Names of the two user concentrations on the line.
LINE_USER_LOCATIONS = ("user_west", "user_east")


def _line_datacenters(
    n_datacenters: int,
    spacing_km: float,
    capacity: int,
    space_base: float,
    space_step_per_location: float,
    power_cost_per_kw: float,
    labor_cost_per_admin: float,
    wan_cost_per_mb: float,
    vpn_base: float,
    vpn_per_km: float,
    space_growth: float = 0.0,
    vpn_per_km_sq: float = 0.0,
) -> list[DataCenter]:
    """Build the line of data centers with index-graded space cost.

    ``space_step_per_location`` gives a linear ramp; a non-zero
    ``space_growth`` compounds geometrically instead (used by the
    space/WAN tradeoff study, whose paper figure is clearly convex).
    ``vpn_per_km_sq`` adds a long-haul premium to link prices — real
    dedicated circuits price superlinearly with distance.
    """

    def link_price(distance: float) -> float:
        return vpn_base + vpn_per_km * distance + vpn_per_km_sq * distance**2

    positions = line_positions(n_datacenters, spacing_km)
    west = positions[0]
    east = positions[-1]
    datacenters = []
    for i, pos in enumerate(positions):
        if space_growth > 0.0:
            space_price = space_base * (1.0 + space_growth) ** i
        else:
            space_price = space_base + space_step_per_location * i
        lat_west = latency_ms(pos.distance_to(west))
        lat_east = latency_ms(pos.distance_to(east))
        datacenters.append(
            DataCenter(
                name=f"location{i}",
                capacity=capacity,
                space_cost=StepCostFunction.flat(space_price),
                power_cost_per_kw=power_cost_per_kw,
                labor_cost_per_admin=labor_cost_per_admin,
                wan_cost_per_mb=wan_cost_per_mb,
                latency_to_users={
                    LINE_USER_LOCATIONS[0]: lat_west,
                    LINE_USER_LOCATIONS[1]: lat_east,
                },
                vpn_link_cost={
                    LINE_USER_LOCATIONS[0]: link_price(pos.distance_to(west)),
                    LINE_USER_LOCATIONS[1]: link_price(pos.distance_to(east)),
                },
                x=pos.x,
                y=pos.y,
            )
        )
    return datacenters


def latency_line_scenario(
    penalty_per_band: float,
    fraction_at_west: float,
    n_groups: int = 190,
    total_servers: int = 1070,
    total_users: float = 2000.0,
    n_datacenters: int = 10,
    spacing_km: float = 450.0,
    capacity: int = 2500,
    threshold_ms: float = 10.0,
    band_width_ms: float = 10.0,
    space_base: float = 40.0,
    space_step_per_location: float = 40.0,
    space_growth: float = 0.0,
    seed: int = 7,
) -> AsIsState:
    """Fig. 7 / Fig. 8 fixture.

    Enterprise1-shaped groups whose users split ``fraction_at_west`` /
    ``1 - fraction_at_west`` between the two ends of the line.  The
    latency constraint is the banded step function at 10 ms; sweeping
    ``penalty_per_band`` from 0 upward reproduces the cost/space/latency
    curves of Fig. 7.
    """
    if not 0.0 <= fraction_at_west <= 1.0:
        raise ValueError("fraction_at_west must be within [0, 1]")
    if penalty_per_band < 0:
        raise ValueError("penalty cannot be negative")
    rng = np.random.default_rng(seed)
    sizes = heavy_tailed_sizes(rng, n_groups, total_servers)
    per_group_users = total_users / n_groups
    if penalty_per_band > 0:
        penalty = LatencyPenaltyFunction.banded(
            threshold_ms, band_width_ms, penalty_per_band, bands=12
        )
    else:
        penalty = NO_PENALTY

    groups = []
    for i, servers in enumerate(sizes):
        users = {
            LINE_USER_LOCATIONS[0]: per_group_users * fraction_at_west,
            LINE_USER_LOCATIONS[1]: per_group_users * (1.0 - fraction_at_west),
        }
        users = {loc: count for loc, count in users.items() if count > 0}
        groups.append(
            ApplicationGroup(
                name=f"ag{i:04d}",
                servers=servers,
                monthly_data_mb=per_group_users * 100.0,
                users=users,
                latency_penalty=penalty,
            )
        )

    datacenters = _line_datacenters(
        n_datacenters=n_datacenters,
        spacing_km=spacing_km,
        capacity=capacity,
        space_base=space_base,
        space_step_per_location=space_step_per_location,
        space_growth=space_growth,
        power_cost_per_kw=80.0,
        labor_cost_per_admin=6000.0,
        wan_cost_per_mb=0.05,
        vpn_base=200.0,
        vpn_per_km=0.25,
    )
    positions = line_positions(n_datacenters, spacing_km)
    user_locations = [
        UserLocation(LINE_USER_LOCATIONS[0], positions[0].x, positions[0].y),
        UserLocation(LINE_USER_LOCATIONS[1], positions[-1].x, positions[-1].y),
    ]
    return AsIsState(
        name="latency-line",
        app_groups=groups,
        target_datacenters=datacenters,
        user_locations=user_locations,
        params=CostParameters(),
    )


def tradeoff_line_scenario(
    n_groups: int = 700,
    n_datacenters: int = 10,
    capacity: int = 100,
    spacing_km: float = 450.0,
    servers_per_group: int = 1,
    data_mb_per_group: float = 60_000.0,
    vpn_link_capacity_mb: float = 100_000.0,
    space_base: float = 5.0,
    space_growth: float = 1.45,
    vpn_base: float = 20.0,
    vpn_per_km: float = 0.20,
    vpn_per_km_sq: float = 1.1e-3,
    seed: int = 9,
) -> AsIsState:
    """Fig. 9 / Fig. 10 fixture.

    Ten capacity-100 data centers; one-server application groups whose
    users all sit at location 9 and connect over dedicated VPN links, so
    WAN cost falls toward location 9 while (geometrically growing) space
    cost rises — the tradeoff whose total is minimized in the middle of
    the line.
    """
    if n_groups < 0:
        raise ValueError("n_groups cannot be negative")
    groups = []
    users_per_group = 10.0
    for i in range(n_groups):
        groups.append(
            ApplicationGroup(
                name=f"ag{i:04d}",
                servers=servers_per_group,
                monthly_data_mb=data_mb_per_group,
                users={LINE_USER_LOCATIONS[1]: users_per_group},
                latency_penalty=NO_PENALTY,
            )
        )

    datacenters = _line_datacenters(
        n_datacenters=n_datacenters,
        spacing_km=spacing_km,
        capacity=capacity,
        space_base=space_base,
        space_step_per_location=0.0,
        space_growth=space_growth,
        power_cost_per_kw=30.0,
        labor_cost_per_admin=2600.0,
        wan_cost_per_mb=0.05,
        vpn_base=vpn_base,
        vpn_per_km=vpn_per_km,
        vpn_per_km_sq=vpn_per_km_sq,
    )
    positions = line_positions(n_datacenters, spacing_km)
    user_locations = [
        UserLocation(LINE_USER_LOCATIONS[0], positions[0].x, positions[0].y),
        UserLocation(LINE_USER_LOCATIONS[1], positions[-1].x, positions[-1].y),
    ]
    params = CostParameters(vpn_link_capacity_mb=vpn_link_capacity_mb)
    return AsIsState(
        name="tradeoff-line",
        app_groups=groups,
        target_datacenters=datacenters,
        user_locations=user_locations,
        params=params,
    )


#: Canned event-trace profiles for :func:`online_line_trace`.
ONLINE_TRACE_PROFILES = ("diurnal", "flash", "growth", "mixed")


def online_line_scenario(
    n_groups: int = 24,
    total_servers: int = 600,
    n_datacenters: int = 6,
    capacity: int = 250,
    spacing_km: float = 450.0,
    seed: int = 11,
) -> AsIsState:
    """Line estate sized for the online re-planning loop.

    Same geometry and pricing shape as :func:`latency_line_scenario`
    but small enough to re-solve dozens of times in a replay, and with
    ~2.5x capacity headroom so the controller has somewhere to spread
    load when a site overloads and something to switch off when the
    estate idles.
    """
    rng = np.random.default_rng(seed)
    sizes = heavy_tailed_sizes(rng, n_groups, total_servers)
    per_group_users = 1000.0 / n_groups
    groups = []
    for i, servers in enumerate(sizes):
        groups.append(
            ApplicationGroup(
                name=f"ag{i:04d}",
                servers=servers,
                monthly_data_mb=per_group_users * 100.0,
                users={
                    LINE_USER_LOCATIONS[0]: per_group_users * 0.5,
                    LINE_USER_LOCATIONS[1]: per_group_users * 0.5,
                },
                latency_penalty=NO_PENALTY,
            )
        )
    datacenters = _line_datacenters(
        n_datacenters=n_datacenters,
        spacing_km=spacing_km,
        capacity=capacity,
        space_base=40.0,
        space_step_per_location=40.0,
        power_cost_per_kw=80.0,
        labor_cost_per_admin=6000.0,
        wan_cost_per_mb=0.05,
        vpn_base=200.0,
        vpn_per_km=0.25,
    )
    positions = line_positions(n_datacenters, spacing_km)
    user_locations = [
        UserLocation(LINE_USER_LOCATIONS[0], positions[0].x, positions[0].y),
        UserLocation(LINE_USER_LOCATIONS[1], positions[-1].x, positions[-1].y),
    ]
    return AsIsState(
        name="online-line",
        app_groups=groups,
        target_datacenters=datacenters,
        user_locations=user_locations,
        params=CostParameters(),
    )


def online_line_trace(
    state: AsIsState,
    profile: str = "diurnal",
    horizon_hours: float = 24.0 * 14,
    seed: int = 0,
) -> tuple[list[LoadEvent], list[Outage]]:
    """A deterministic ``(load_events, outages)`` pair for a replay.

    Profiles: ``diurnal`` (gentle day/night swings, no failures),
    ``flash`` (a flash crowd on the four largest groups), ``growth``
    (weekly compounding demand), and ``mixed`` (diurnal plus a flash
    crowd plus one day-long site outage).  The same ``(state, profile,
    horizon, seed)`` always yields the same trace.
    """
    groups = [g.name for g in state.app_groups]
    largest = [
        g.name
        for g in sorted(state.app_groups, key=lambda g: (-g.servers, g.name))[:4]
    ]
    if profile == "diurnal":
        return (
            diurnal_cycle(
                groups, horizon_hours, amplitude=0.15, resolution=0.05, seed=seed
            ),
            [],
        )
    if profile == "flash":
        return (
            flash_crowd(largest, at_hours=min(48.0, horizon_hours / 2)),
            [],
        )
    if profile == "growth":
        return (
            growth_ramp(groups, horizon_hours, monthly_growth=0.12),
            [],
        )
    if profile == "mixed":
        steady = [g for g in groups if g not in largest]
        load = merge_traces(
            diurnal_cycle(
                steady, horizon_hours, amplitude=0.15, resolution=0.05, seed=seed
            ),
            flash_crowd(largest, at_hours=min(72.0, horizon_hours / 2)),
        )
        outage_site = state.target_datacenters[0].name
        outage = Outage(
            site=outage_site,
            start_hours=min(120.0, horizon_hours * 0.6),
            end_hours=min(144.0, horizon_hours * 0.6 + 24.0),
        )
        return load, [outage]
    raise ValueError(
        f"unknown trace profile {profile!r}; expected one of {ONLINE_TRACE_PROFILES}"
    )
