"""Seeded synthetic price tables.

The paper sources prices from 2010-era industry reports: a
telegeography colocation survey for space, a Global Knowledge salary
report for labor, the EIA's retail-electricity table for power, and
Amazon's EC2 cost-comparison calculator for WAN.  None of those exact
tables ship with the paper, so we draw from the same published *ranges*
with a seeded RNG — the experiments depend on the relative spread and
the volume-discount structure, not on 2010 dollar values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costs import StepCostFunction, monthly_power_cost_per_kw


@dataclass(frozen=True)
class PriceRanges:
    """Sampling ranges for one enterprise's candidate sites.

    Space is $/server/month at the first (undiscounted) tier; power is
    retail ¢/kWh; labor is $/administrator/month; WAN is $/megabit.
    """

    space_base: tuple[float, float] = (60.0, 180.0)
    power_cents_per_kwh: tuple[float, float] = (6.0, 18.0)
    labor_monthly: tuple[float, float] = (4200.0, 9800.0)
    wan_per_mb: tuple[float, float] = (0.02, 0.12)
    #: Volume-discount shape: price drops `discount_fraction` of base per
    #: `step_servers` servers, floored at `floor_fraction` of base.
    step_servers: int = 100
    discount_fraction: float = 0.08
    floor_fraction: float = 0.5
    #: VPN link tariff F = base + per_km · distance ($/link/month).
    vpn_base_monthly: tuple[float, float] = (150.0, 350.0)
    vpn_per_km: tuple[float, float] = (0.15, 0.45)
    #: Monthly per-site facility overhead ($/month while the site hosts
    #: anything) — what scattering an estate over many sites costs.
    fixed_monthly: tuple[float, float] = (3000.0, 9000.0)


DEFAULT_RANGES = PriceRanges()


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    low, high = bounds
    if low > high:
        raise ValueError(f"invalid range {bounds}")
    return float(rng.uniform(low, high))


def sample_space_schedule(
    rng: np.random.Generator,
    ranges: PriceRanges = DEFAULT_RANGES,
    volume_discount: bool = True,
) -> StepCostFunction:
    """Draw a space-price schedule; optionally flat (no scale economies)."""
    base = _uniform(rng, ranges.space_base)
    if not volume_discount:
        return StepCostFunction.flat(base)
    discount = base * ranges.discount_fraction
    floor = base * ranges.floor_fraction
    return StepCostFunction.volume_discount(
        base_price=base,
        step=ranges.step_servers,
        discount=discount,
        floor_price=floor,
    )


def sample_power_cost(rng: np.random.Generator, ranges: PriceRanges = DEFAULT_RANGES) -> float:
    """Draw E_j in $/kW/month from the EIA retail-price range."""
    cents = _uniform(rng, ranges.power_cents_per_kwh)
    return monthly_power_cost_per_kw(cents)


def sample_labor_cost(rng: np.random.Generator, ranges: PriceRanges = DEFAULT_RANGES) -> float:
    """Draw T_j in $/admin/month from the salary-report range."""
    return _uniform(rng, ranges.labor_monthly)


def sample_wan_price(rng: np.random.Generator, ranges: PriceRanges = DEFAULT_RANGES) -> float:
    """Draw W_j in $/megabit from the cloud-pricing range."""
    return _uniform(rng, ranges.wan_per_mb)


def sample_fixed_cost(rng: np.random.Generator, ranges: PriceRanges = DEFAULT_RANGES) -> float:
    """Draw the monthly facility overhead of one site."""
    return _uniform(rng, ranges.fixed_monthly)


def sample_vpn_tariff(
    rng: np.random.Generator, ranges: PriceRanges = DEFAULT_RANGES
) -> tuple[float, float]:
    """Draw the (base, per-km) parameters of a dedicated-link tariff."""
    return _uniform(rng, ranges.vpn_base_monthly), _uniform(rng, ranges.vpn_per_km)
