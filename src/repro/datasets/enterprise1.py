"""Case-study dataset 1: the multinational enterprise ("enterprise1").

Table II: 67 as-is data centers, 10 targets, 1070 servers, 190
application groups.  The user population (18 913) is the sum of the
per-continent user counts in Fig. 2.
"""

from __future__ import annotations

from ..core.entities import AsIsState
from .builders import EnterpriseSpec, build_enterprise_state

#: Fig. 2 user counts per continent, summed.
ENTERPRISE1_USERS = 5135 + 760 + 3600 + 8736 + 682


def enterprise1_spec(seed: int = 1, scale: float = 1.0) -> EnterpriseSpec:
    """The Table II "Enterprise1" row as a generator spec."""
    return EnterpriseSpec(
        name="enterprise1",
        app_groups=190,
        total_servers=1070,
        current_datacenters=67,
        target_datacenters=10,
        total_users=float(ENTERPRISE1_USERS),
        seed=seed,
        scale=scale,
    )


def load_enterprise1(seed: int = 1, scale: float = 1.0) -> AsIsState:
    """Build the enterprise1 as-is state (deterministic per seed)."""
    return build_enterprise_state(enterprise1_spec(seed=seed, scale=scale))
