"""Case-study dataset 3: the US federal government.

Table II: 2094 as-is data centers, 100 targets, 42 800 servers, 1900
application groups — ten times the enterprise1 group count with the same
distributions, exactly the paper's own construction.

At full scale the non-DR MILP has 190 000 assignment binaries (HiGHS
territory); the joint DR model is benchmarked at reduced ``scale`` —
see EXPERIMENTS.md.
"""

from __future__ import annotations

from ..core.entities import AsIsState
from .builders import EnterpriseSpec, build_enterprise_state
from .enterprise1 import ENTERPRISE1_USERS

#: Ten enterprise1 populations, matching the 10× group scaling.
FEDERAL_USERS = ENTERPRISE1_USERS * 10


def federal_spec(seed: int = 3, scale: float = 1.0) -> EnterpriseSpec:
    """The Table II "Federal" row as a generator spec."""
    return EnterpriseSpec(
        name="federal",
        app_groups=1900,
        total_servers=42800,
        current_datacenters=2094,
        target_datacenters=100,
        total_users=float(FEDERAL_USERS),
        seed=seed,
        scale=scale,
    )


def load_federal(seed: int = 3, scale: float = 1.0) -> AsIsState:
    """Build the federal as-is state (deterministic per seed)."""
    return build_enterprise_state(federal_spec(seed=seed, scale=scale))
