"""Generic synthetic enterprise-estate builder.

Implements the experimental setup of paper Section VI:

* four user locations; application groups split 50/50 into
  latency-sensitive ($100/user beyond 10 ms) and insensitive;
* sensitive groups fall into five affinity classes (all users at one of
  the four locations, or spread equally);
* target data centers fall into five latency classes (5 ms to one
  location / 20 ms to the rest, or 10 ms to all) with capacities between
  100 and 1000 servers and prices drawn from the published ranges;
* the as-is estate scatters the same groups across many small sites
  whose tiny per-site volumes forfeit every volume discount — which is
  exactly why consolidation pays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.costs import StepCostFunction
from ..core.entities import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    UserLocation,
)
from ..core.latency import NO_PENALTY, LatencyPenaltyFunction
from .distributions import (
    affinity_class_users,
    heavy_tailed_sizes,
    user_data_volume,
)
from .geography import class_latencies, corner_positions, distance_km
from .pricing import (
    DEFAULT_RANGES,
    PriceRanges,
    sample_fixed_cost,
    sample_labor_cost,
    sample_power_cost,
    sample_space_schedule,
    sample_vpn_tariff,
    sample_wan_price,
)

#: Canonical latency constraint of the case studies.
DEFAULT_PENALTY = LatencyPenaltyFunction.single_threshold(10.0, 100.0)

#: Side of the square region whose corners host the user locations (km).
REGION_SIDE_KM = 6000.0


@dataclass
class EnterpriseSpec:
    """Recipe for one synthetic enterprise (Table II row).

    ``scale`` proportionally shrinks groups, servers, users and site
    counts — used to keep DR-case benchmarks tractable while preserving
    all distributions (recorded per-experiment in EXPERIMENTS.md).
    """

    name: str
    app_groups: int
    total_servers: int
    current_datacenters: int
    target_datacenters: int
    total_users: float
    seed: int = 0
    user_location_names: tuple[str, ...] = ("loc0", "loc1", "loc2", "loc3")
    capacity_range: tuple[int, int] = (100, 1000)
    latency_penalty: LatencyPenaltyFunction = field(default_factory=lambda: DEFAULT_PENALTY)
    price_ranges: PriceRanges = field(default_factory=lambda: DEFAULT_RANGES)
    #: Guaranteed ratio of aggregate target capacity to total servers.
    capacity_headroom: float = 1.8
    scale: float = 1.0

    def scaled(self) -> "EnterpriseSpec":
        """Apply the ``scale`` factor to all size fields."""
        if self.scale == 1.0:
            return self
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        factor = self.scale
        groups = max(5, int(round(self.app_groups * factor)))
        return EnterpriseSpec(
            name=self.name,
            app_groups=groups,
            total_servers=max(groups, int(round(self.total_servers * factor))),
            # Floors keep the five latency classes represented and leave
            # the manual-DR variant enough sites to pair backups.
            current_datacenters=max(5, int(round(self.current_datacenters * factor))),
            target_datacenters=max(5, int(round(self.target_datacenters * factor))),
            total_users=max(groups, self.total_users * factor),
            seed=self.seed,
            user_location_names=self.user_location_names,
            capacity_range=self.capacity_range,
            latency_penalty=self.latency_penalty,
            price_ranges=self.price_ranges,
            capacity_headroom=self.capacity_headroom,
            scale=1.0,
        )


def _latency_class_for(index: int, n_locations: int) -> int | None:
    """Round-robin over the paper's five DC latency classes."""
    cls = index % (n_locations + 1)
    return None if cls == n_locations else cls


def _site_position(
    rng: np.random.Generator,
    close_to: int | None,
    corners: list,
    jitter_km: float = 250.0,
) -> tuple[float, float]:
    """Place a site near its latency-class anchor (or region center)."""
    if close_to is None:
        cx = sum(p.x for p in corners) / len(corners)
        cy = sum(p.y for p in corners) / len(corners)
    else:
        cx, cy = corners[close_to].x, corners[close_to].y
    return (
        cx + float(rng.uniform(-jitter_km, jitter_km)),
        cy + float(rng.uniform(-jitter_km, jitter_km)),
    )


def _build_datacenter(
    rng: np.random.Generator,
    name: str,
    index: int,
    capacity: int,
    locations: list[str],
    corners: list,
    ranges: PriceRanges,
    volume_discount: bool = True,
) -> DataCenter:
    close_to = _latency_class_for(index, len(locations))
    x, y = _site_position(rng, close_to, corners)
    vpn_base, vpn_per_km = sample_vpn_tariff(rng, ranges)
    vpn_cost = {
        loc: vpn_base + vpn_per_km * distance_km(x, y, corners[i].x, corners[i].y)
        for i, loc in enumerate(locations)
    }
    return DataCenter(
        name=name,
        capacity=capacity,
        space_cost=sample_space_schedule(rng, ranges, volume_discount=volume_discount),
        power_cost_per_kw=sample_power_cost(rng, ranges),
        labor_cost_per_admin=sample_labor_cost(rng, ranges),
        wan_cost_per_mb=sample_wan_price(rng, ranges),
        latency_to_users=class_latencies(close_to, locations),
        vpn_link_cost=vpn_cost,
        x=x,
        y=y,
        fixed_monthly_cost=sample_fixed_cost(rng, ranges),
    )


def _target_capacities(
    rng: np.random.Generator, spec: EnterpriseSpec
) -> list[int]:
    """Capacities in the paper's 100–1000 range, with guaranteed headroom."""
    low, high = spec.capacity_range
    caps = [int(rng.integers(low, high + 1)) for _ in range(spec.target_datacenters)]
    required = int(math.ceil(spec.total_servers * spec.capacity_headroom))
    total = sum(caps)
    if total < required:
        # Scale everything up proportionally; keeps relative sizes.
        factor = required / total
        caps = [int(math.ceil(c * factor)) for c in caps]
    return caps


def _latency_aware_assignment(
    rng: np.random.Generator,
    groups: list[ApplicationGroup],
    sizes: list[int],
    site_count: int,
    locations: list[str],
) -> list[int]:
    """Assign groups to as-is sites of their matching latency class.

    A group concentrated at location *k* goes to a site of class *k*
    (5 ms away); a spread group goes to a central-class site (10 ms).
    Within the class, site popularity follows the same heavy-tailed
    weighting as :func:`assign_groups_to_sites`.
    """
    n_classes = len(locations) + 1
    sites_by_class: dict[int | None, list[int]] = {}
    for site in range(site_count):
        cls = _latency_class_for(site, len(locations))
        sites_by_class.setdefault(cls, []).append(site)

    assignments: list[int] = []
    for group in groups:
        concentrated = [
            idx
            for idx, loc in enumerate(locations)
            if group.users.get(loc, 0.0) >= 0.99 * max(group.total_users, 1e-9)
        ]
        cls: int | None = concentrated[0] if concentrated else None
        candidates = sites_by_class.get(cls) or list(range(site_count))
        ranks = np.arange(1, len(candidates) + 1)
        weights = ranks ** (-0.6)
        weights /= weights.sum()
        assignments.append(int(rng.choice(candidates, p=weights)))
    return assignments


def build_enterprise_state(spec: EnterpriseSpec) -> AsIsState:
    """Generate the full as-is state for an :class:`EnterpriseSpec`.

    Deterministic for a given spec (seeded RNG); two calls with the same
    spec produce identical states.
    """
    spec = spec.scaled()
    rng = np.random.default_rng(spec.seed)
    locations = list(spec.user_location_names)
    corners = corner_positions(REGION_SIDE_KM)[: len(locations)]
    user_locations = [
        UserLocation(name, corners[i].x, corners[i].y)
        for i, name in enumerate(locations)
    ]

    # --- application groups --------------------------------------------
    sizes = heavy_tailed_sizes(rng, spec.app_groups, spec.total_servers)
    user_weights = rng.lognormal(0.0, 0.8, size=spec.app_groups)
    user_totals = user_weights / user_weights.sum() * spec.total_users

    groups: list[ApplicationGroup] = []
    sensitive_seen = 0
    for i, servers in enumerate(sizes):
        sensitive = i % 2 == 0  # half latency-sensitive (paper Section VI-B)
        if sensitive:
            users = affinity_class_users(rng, sensitive_seen, user_totals[i], locations)
            sensitive_seen += 1
            penalty = spec.latency_penalty
        else:
            users = affinity_class_users(rng, int(rng.integers(0, len(locations) + 1)),
                                         user_totals[i], locations)
            penalty = NO_PENALTY
        groups.append(
            ApplicationGroup(
                name=f"ag{i:04d}",
                servers=servers,
                monthly_data_mb=user_data_volume(rng, sum(users.values())),
                users=users,
                latency_penalty=penalty,
            )
        )

    # --- target data centers ---------------------------------------------
    capacities = _target_capacities(rng, spec)
    targets = [
        _build_datacenter(
            rng, f"target{j:03d}", j, capacities[j], locations, corners,
            spec.price_ranges,
        )
        for j in range(spec.target_datacenters)
    ]

    # --- as-is estate -------------------------------------------------------
    # Historic estates grew up next to their users — which is exactly why
    # they are scattered.  Each group therefore sits in a current site of
    # the latency class matching its user concentration, so the as-is
    # state starts (nearly) latency-clean and the baselines' penalties
    # are their own doing.
    site_of = _latency_aware_assignment(
        rng, groups, sizes, spec.current_datacenters, locations
    )
    load: dict[int, int] = {}
    for g_idx, site in enumerate(site_of):
        load[site] = load.get(site, 0) + sizes[g_idx]
    currents: list[DataCenter] = []
    for s in range(spec.current_datacenters):
        site_load = max(load.get(s, 0), 1)
        dc = _build_datacenter(
            rng, f"asis{s:04d}", s, site_load, locations, corners,
            spec.price_ranges,
        )
        currents.append(dc)
    for g_idx, site in enumerate(site_of):
        groups[g_idx].current_datacenter = currents[site].name

    return AsIsState(
        name=spec.name,
        app_groups=groups,
        target_datacenters=targets,
        user_locations=user_locations,
        current_datacenters=currents,
        params=CostParameters(),
    )
