"""Bonus presets for the consolidations the paper's introduction cites.

The paper motivates eTransform with three public programmes beyond its
case studies: the UK government (120 data centers → 10), HP (85 → 8)
and the US federal effort (covered by :mod:`repro.datasets.federal`).
These presets model the first two with the same generator machinery —
sized from the published site counts, with estate sizes extrapolated at
enterprise1's servers-per-site density.
"""

from __future__ import annotations

from ..core.entities import AsIsState
from .builders import EnterpriseSpec, build_enterprise_state
from .enterprise1 import ENTERPRISE1_USERS

#: enterprise1 density: ~16 servers and ~2.8 groups per as-is site.
_SERVERS_PER_SITE = 1070 / 67
_GROUPS_PER_SITE = 190 / 67


def uk_government_spec(seed: int = 4, scale: float = 1.0) -> EnterpriseSpec:
    """UK central government: 120 as-is sites → 10 targets."""
    sites = 120
    return EnterpriseSpec(
        name="uk-government",
        app_groups=round(sites * _GROUPS_PER_SITE),
        total_servers=round(sites * _SERVERS_PER_SITE),
        current_datacenters=sites,
        target_datacenters=10,
        total_users=ENTERPRISE1_USERS * sites / 67,
        seed=seed,
        scale=scale,
    )


def load_uk_government(seed: int = 4, scale: float = 1.0) -> AsIsState:
    """Build the UK-government-sized estate (deterministic per seed)."""
    return build_enterprise_state(uk_government_spec(seed=seed, scale=scale))


def hp_spec(seed: int = 5, scale: float = 1.0) -> EnterpriseSpec:
    """Hewlett-Packard's transformation: 85 as-is sites → 8 targets."""
    sites = 85
    return EnterpriseSpec(
        name="hp",
        app_groups=round(sites * _GROUPS_PER_SITE),
        total_servers=round(sites * _SERVERS_PER_SITE),
        current_datacenters=sites,
        target_datacenters=8,
        total_users=ENTERPRISE1_USERS * sites / 67,
        seed=seed,
        scale=scale,
    )


def load_hp(seed: int = 5, scale: float = 1.0) -> AsIsState:
    """Build the HP-sized estate (deterministic per seed)."""
    return build_enterprise_state(hp_spec(seed=seed, scale=scale))
