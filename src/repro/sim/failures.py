"""Site failure model: seeded exponential failure/repair processes.

Each data center fails according to a Poisson process (exponential
inter-failure times with the given MTBF) and is repaired after an
exponentially distributed outage (MTTR).  Disasters in the paper's sense
— floods, fires, grid failures — are rare and long; the defaults model
roughly one disaster per site per decade, repaired in days.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

#: Hours in a (30-day) simulation month.
HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class FailureModelConfig:
    """Failure-process parameters (hours)."""

    mtbf_hours: float = 10 * 8760.0   # ~one disaster per decade
    mttr_hours: float = 96.0          # ~four days to recover a site
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0 or self.mttr_hours <= 0:
            raise ValueError("MTBF and MTTR must be positive")


@dataclass(frozen=True)
class Outage:
    """One failure interval of one site."""

    site: str
    start_hours: float
    end_hours: float

    @property
    def duration_hours(self) -> float:
        return self.end_hours - self.start_hours

    def __post_init__(self) -> None:
        if self.end_hours < self.start_hours:
            raise ValueError("outage ends before it starts")


def sample_outages(
    sites: list[str],
    horizon_hours: float,
    config: FailureModelConfig,
) -> list[Outage]:
    """Draw every outage of every site over the horizon, time-sorted.

    Outages of one site never overlap (a failed site cannot re-fail);
    outages of different sites may — that is exactly the multi-failure
    stress the simulator uses to probe shared-pool sizing.

    Each site draws from its own stream, seeded by ``(config.seed,
    site name)``: a site's outage history does not depend on which
    *other* sites were sampled alongside it.  That is what makes
    :func:`~repro.sim.simulator.compare_resilience` subset-stable —
    filtering a shared sample down to one plan's sites yields exactly
    what sampling those sites alone would have.
    """
    if horizon_hours <= 0:
        raise ValueError("horizon must be positive")
    outages: list[Outage] = []
    for site in sites:
        # Stable across processes (unlike hash()) and uncorrelated
        # between sites sharing a config seed.
        site_key = int.from_bytes(
            hashlib.blake2b(site.encode(), digest_size=8).digest(), "big"
        )
        rng = np.random.default_rng((config.seed, site_key))
        clock = 0.0
        while True:
            clock += float(rng.exponential(config.mtbf_hours))
            if clock >= horizon_hours:
                break
            repair = clock + float(rng.exponential(config.mttr_hours))
            end = min(repair, horizon_hours)
            outages.append(Outage(site, clock, end))
            clock = repair
    outages.sort(key=lambda o: o.start_hours)
    return outages
