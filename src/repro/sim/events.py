"""Discrete-event core for the estate simulator and the online loop."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator


class EventKind(Enum):
    """Things that can happen to a data center or an application group."""

    SITE_FAIL = "site_fail"
    SITE_REPAIR = "site_repair"
    FAILOVER_COMPLETE = "failover_complete"
    LOAD_CHANGE = "load_change"
    HORIZON_END = "horizon_end"


#: Processing order for events sharing one timestamp.  Repairs land
#: before failures so a back-to-back outage pair (repair at *t*, new
#: failure at *t*) resolves as two outages, and a secondary repaired at
#: the instant a primary fails can accept the failover.  Failover
#: completions slot between the two: a group whose blip ends exactly
#: when its primary repairs is promoted to its secondary and fails back
#: in the same instant (zero secondary hours either way, but the
#: failback is counted deterministically).
_KIND_PRIORITY = {
    EventKind.SITE_REPAIR: 0,
    EventKind.FAILOVER_COMPLETE: 1,
    EventKind.SITE_FAIL: 2,
    EventKind.LOAD_CHANGE: 3,
    EventKind.HORIZON_END: 4,
}


def kind_priority(kind: EventKind) -> int:
    """Same-timestamp processing rank of ``kind`` (lower runs first)."""
    return _KIND_PRIORITY[kind]


@dataclass(order=True)
class Event:
    """A scheduled simulation event.

    Ordered by ``(time_hours, priority, sequence)``: time first, then
    the deterministic kind rank (see :func:`kind_priority`), then
    insertion order — so two traces built from the same events replay
    identically regardless of how the schedule was assembled.
    """

    time_hours: float
    priority: int = field(compare=True, default=0)
    sequence: int = field(compare=True, default=0)
    kind: EventKind = field(compare=False, default=EventKind.HORIZON_END)
    site: str | None = field(compare=False, default=None)
    group: str | None = field(compare=False, default=None)
    #: Kind-specific payload: the load factor for ``LOAD_CHANGE``, the
    #: failover sequence token for ``FAILOVER_COMPLETE``.
    value: float | None = field(compare=False, default=None)


class EventQueue:
    """Min-heap of events with deterministic same-timestamp ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(
        self,
        time_hours: float,
        kind: EventKind,
        site: str | None = None,
        group: str | None = None,
        value: float | None = None,
    ) -> Event:
        if time_hours < 0:
            raise ValueError("events cannot be scheduled in the past of t=0")
        event = Event(
            time_hours,
            kind_priority(kind),
            next(self._counter),
            kind,
            site,
            group,
            value,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        if not self._heap:
            raise IndexError("peek at empty event queue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, horizon_hours: float) -> Iterator[Event]:
        """Pop events in time order until the horizon (exclusive)."""
        while self._heap and self._heap[0].time_hours < horizon_hours:
            yield self.pop()
