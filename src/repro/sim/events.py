"""Discrete-event core for the estate simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator


class EventKind(Enum):
    """Things that can happen to a data center."""

    SITE_FAIL = "site_fail"
    SITE_REPAIR = "site_repair"
    HORIZON_END = "horizon_end"


@dataclass(order=True)
class Event:
    """A scheduled simulation event, ordered by time (hours)."""

    time_hours: float
    sequence: int = field(compare=True)
    kind: EventKind = field(compare=False, default=EventKind.HORIZON_END)
    site: str | None = field(compare=False, default=None)


class EventQueue:
    """Min-heap of events with a stable tiebreaker."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time_hours: float, kind: EventKind, site: str | None = None) -> Event:
        if time_hours < 0:
            raise ValueError("events cannot be scheduled in the past of t=0")
        event = Event(time_hours, next(self._counter), kind, site)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, horizon_hours: float) -> Iterator[Event]:
        """Pop events in time order until the horizon (exclusive)."""
        while self._heap and self._heap[0].time_hours < horizon_hours:
            yield self.pop()
