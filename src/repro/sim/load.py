"""Load-change traces for the online re-planning loop.

The estate simulator replays *failures*; the online controller also
needs *demand*: application-group load that moves over time.  A trace
is a time-sorted list of :class:`LoadEvent` records, each setting one
group's load factor — an **absolute** multiplier against the group's
nominal server demand (1.0 = nominal), never a delta, so replaying a
prefix of a trace always leaves a well-defined load vector.

Three generator families cover the scenario space the dynamic
consolidation literature works with (OpenStack-Neat-style controllers):

* :func:`diurnal_cycle` — sinusoidal day/night swings, per-group phase
  jitter so sites do not breathe in perfect lockstep;
* :func:`flash_crowd` — a sudden spike on a few groups with a linear
  ramp-up and decay back to nominal;
* :func:`growth_ramp` — compounding month-over-month growth, the
  slow-motion overload that forces estate re-planning.

All generators are seeded and quantize factors to ``resolution`` so
small oscillations do not produce event storms; :func:`merge_traces`
interleaves traces into one deterministic stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class LoadEvent:
    """One group's load factor changing at a point in time."""

    time_hours: float
    group: str
    factor: float

    def __post_init__(self) -> None:
        if self.time_hours < 0:
            raise ValueError("load events cannot be scheduled before t=0")
        if self.factor < 0:
            raise ValueError("load factor cannot be negative")


def _quantize(factor: float, resolution: float) -> float:
    """Snap ``factor`` to the grid so near-noise changes emit no event."""
    if resolution <= 0:
        return factor
    return round(round(factor / resolution) * resolution, 9)


def _emit_changes(
    samples: Iterable[tuple[float, str, float]], resolution: float
) -> list[LoadEvent]:
    """Turn (time, group, factor) samples into change-only events."""
    last: dict[str, float] = {}
    events: list[LoadEvent] = []
    for time_hours, group, factor in samples:
        level = _quantize(factor, resolution)
        if last.get(group, 1.0) == level:
            continue
        last[group] = level
        events.append(LoadEvent(time_hours, group, level))
    return events


def diurnal_cycle(
    groups: Sequence[str],
    horizon_hours: float,
    amplitude: float = 0.4,
    period_hours: float = 24.0,
    step_hours: float = 2.0,
    resolution: float = 0.1,
    seed: int = 0,
) -> list[LoadEvent]:
    """Day/night load swings: factor = 1 + amplitude·sin(phase).

    Each group gets a random phase offset so the estate's sites peak at
    different times — the pattern that makes rolling consolidation pay.
    """
    if horizon_hours <= 0 or period_hours <= 0 or step_hours <= 0:
        raise ValueError("horizon, period and step must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be within [0, 1)")
    rng = np.random.default_rng(seed)
    phases = {g: float(rng.uniform(0.0, 2.0 * math.pi)) for g in groups}
    samples = []
    steps = int(horizon_hours / step_hours)
    for i in range(1, steps + 1):
        t = i * step_hours
        if t >= horizon_hours:
            break
        for g in groups:
            factor = 1.0 + amplitude * math.sin(
                2.0 * math.pi * t / period_hours + phases[g]
            )
            samples.append((t, g, factor))
    return _emit_changes(samples, resolution)


def flash_crowd(
    groups: Sequence[str],
    at_hours: float,
    magnitude: float = 2.5,
    ramp_hours: float = 1.0,
    hold_hours: float = 4.0,
    decay_hours: float = 6.0,
    step_hours: float = 0.5,
    resolution: float = 0.1,
) -> list[LoadEvent]:
    """A sudden spike on ``groups``: ramp to ``magnitude``, hold, decay."""
    if at_hours < 0:
        raise ValueError("flash crowd cannot start before t=0")
    if magnitude < 1.0:
        raise ValueError("a flash crowd multiplies load (magnitude >= 1)")
    if min(ramp_hours, hold_hours, decay_hours, step_hours) <= 0:
        raise ValueError("ramp, hold, decay and step must be positive")
    samples = []
    end = at_hours + ramp_hours + hold_hours + decay_hours
    t = at_hours
    while t <= end + 1e-9:
        if t < at_hours + ramp_hours:
            factor = 1.0 + (magnitude - 1.0) * (t - at_hours) / ramp_hours
        elif t < at_hours + ramp_hours + hold_hours:
            factor = magnitude
        else:
            into_decay = t - at_hours - ramp_hours - hold_hours
            factor = magnitude - (magnitude - 1.0) * min(1.0, into_decay / decay_hours)
        for g in groups:
            samples.append((t, g, factor))
        t += step_hours
    # Always land exactly back at nominal.
    for g in groups:
        samples.append((end, g, 1.0))
    return _emit_changes(samples, resolution)


def growth_ramp(
    groups: Sequence[str],
    horizon_hours: float,
    monthly_growth: float = 0.05,
    step_hours: float = 168.0,
    resolution: float = 0.05,
) -> list[LoadEvent]:
    """Compounding demand growth, sampled every ``step_hours``."""
    if horizon_hours <= 0 or step_hours <= 0:
        raise ValueError("horizon and step must be positive")
    if monthly_growth < 0:
        raise ValueError("growth cannot be negative")
    from .failures import HOURS_PER_MONTH

    samples = []
    steps = int(horizon_hours / step_hours)
    for i in range(1, steps + 1):
        t = i * step_hours
        if t >= horizon_hours:
            break
        factor = (1.0 + monthly_growth) ** (t / HOURS_PER_MONTH)
        for g in groups:
            samples.append((t, g, factor))
    return _emit_changes(samples, resolution)


def merge_traces(*traces: Sequence[LoadEvent]) -> list[LoadEvent]:
    """Interleave traces into one deterministic time-sorted stream.

    Ties break by (group, factor) so the merged order never depends on
    argument order — a same-trace replay is byte-identical.
    """
    merged = [event for trace in traces for event in trace]
    merged.sort(key=lambda e: (e.time_hours, e.group, e.factor))
    return merged
