"""Estate failure simulator: dynamic validation of DR plans."""

from .events import Event, EventKind, EventQueue, kind_priority
from .failures import HOURS_PER_MONTH, FailureModelConfig, Outage, sample_outages
from .load import LoadEvent, diurnal_cycle, flash_crowd, growth_ramp, merge_traces
from .metrics import GroupOutcome, PoolShortfall, SimulationReport
from .simulator import SimulatorConfig, compare_resilience, simulate_plan

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "FailureModelConfig",
    "GroupOutcome",
    "HOURS_PER_MONTH",
    "LoadEvent",
    "Outage",
    "PoolShortfall",
    "SimulationReport",
    "SimulatorConfig",
    "compare_resilience",
    "diurnal_cycle",
    "flash_crowd",
    "growth_ramp",
    "kind_priority",
    "merge_traces",
    "sample_outages",
    "simulate_plan",
]
