"""Estate failure simulator: dynamic validation of DR plans."""

from .events import Event, EventKind, EventQueue
from .failures import HOURS_PER_MONTH, FailureModelConfig, Outage, sample_outages
from .metrics import GroupOutcome, PoolShortfall, SimulationReport
from .simulator import SimulatorConfig, compare_resilience, simulate_plan

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "FailureModelConfig",
    "GroupOutcome",
    "HOURS_PER_MONTH",
    "Outage",
    "PoolShortfall",
    "SimulationReport",
    "SimulatorConfig",
    "compare_resilience",
    "sample_outages",
    "simulate_plan",
]
