"""Estate simulator: replay disasters against a transformation plan.

The planner sizes shared backup pools *statically* under the
single-failure assumption.  This simulator checks what that buys
*dynamically*: it samples site outages over a multi-year horizon,
fails application groups over to their secondary sites (bounded by the
plan's pool sizes), fails them back on repair, and reports availability,
failover counts and — crucially — every moment a shared pool was too
small because two sites happened to be down at once.

Semantics
---------
* A group with no DR plan is simply down while its primary is down.
* Failover takes ``failover_hours`` of downtime (the *blip*), modeled as
  an explicit ``"failover"`` interval charged to downtime; only after
  the blip completes does the group serve from its secondary.  If the
  primary repairs before the blip ends, the group fails straight back
  (downtime is just the outage, never the full blip); if the secondary
  fails mid-blip, the group goes down until its primary repairs.
* A group is denied failover when its secondary is itself down or the
  pool there is exhausted; denied groups stay down until their primary
  repairs (no retry — conservative, and it keeps causality obvious).
* If the secondary site fails while hosting a failed-over group, the
  group goes down and returns only when its primary repairs.
* Events sharing a timestamp process in a deterministic kind order
  (repairs, then failover completions, then failures — see
  :func:`repro.sim.events.kind_priority`), so scripted traces replay
  identically however they were assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.entities import AsIsState
from ..core.plan import TransformationPlan
from .events import EventKind, EventQueue
from .failures import HOURS_PER_MONTH, FailureModelConfig, Outage, sample_outages
from .metrics import GroupOutcome, PoolShortfall, SimulationReport


@dataclass(frozen=True)
class SimulatorConfig:
    """Simulation parameters."""

    horizon_months: float = 60.0
    failover_hours: float = 0.5
    failure: FailureModelConfig = field(default_factory=FailureModelConfig)

    def __post_init__(self) -> None:
        if self.horizon_months <= 0:
            raise ValueError("horizon must be positive")
        if self.failover_hours < 0:
            raise ValueError("failover time cannot be negative")


class _GroupState:
    """Mutable per-group simulation state."""

    __slots__ = (
        "name", "servers", "primary", "secondary", "mode", "mode_since",
        "failover_seq",
    )

    def __init__(self, name: str, servers: int, primary: str, secondary: str | None):
        self.name = name
        self.servers = servers
        self.primary = primary
        self.secondary = secondary
        # "primary" | "failover" | "secondary" | "down"
        self.mode = "primary"
        self.mode_since = 0.0
        # Token matched against FAILOVER_COMPLETE events so a completion
        # scheduled for an *aborted* blip (failback or secondary loss
        # mid-blip, then a new failover) can never promote the group.
        self.failover_seq = 0


def simulate_plan(
    state: AsIsState,
    plan: TransformationPlan,
    config: SimulatorConfig | None = None,
    outages: list[Outage] | None = None,
) -> SimulationReport:
    """Run the failure simulation of ``plan`` and return the report.

    ``outages`` may be supplied explicitly (tests, what-if studies);
    otherwise they are sampled from ``config.failure`` over the sites
    the plan actually uses.  Zero-duration outages (an interval clamped
    to nothing) are skipped: they have no effect on any group.
    """
    config = config or SimulatorConfig()
    horizon = config.horizon_months * HOURS_PER_MONTH

    groups = {
        g.name: _GroupState(
            g.name, g.servers, plan.placement[g.name], plan.secondary.get(g.name)
        )
        for g in state.app_groups
    }
    report = SimulationReport(
        horizon_hours=horizon,
        groups={name: GroupOutcome(name) for name in groups},
        group_servers={name: gs.servers for name, gs in groups.items()},
    )

    used_sites = plan.datacenters_used
    if outages is None:
        outages = sample_outages(used_sites, horizon, config.failure)

    pool_size = dict(plan.backup_servers)
    pool_used: dict[str, int] = {site: 0 for site in pool_size}
    down_sites: set[str] = set()

    used = set(used_sites)
    queue = EventQueue()
    for outage in outages:
        if outage.site not in used:
            raise ValueError(f"outage for site {outage.site!r} not used by the plan")
        if outage.duration_hours <= 0.0:
            continue  # a clamped-to-nothing outage affects nobody
        queue.push(outage.start_hours, EventKind.SITE_FAIL, outage.site)
        queue.push(outage.end_hours, EventKind.SITE_REPAIR, outage.site)

    def transition(gs: _GroupState, now: float, new_mode: str) -> None:
        """Close the current mode interval and enter ``new_mode``."""
        outcome = report.groups[gs.name]
        duration = now - gs.mode_since
        if gs.mode == "primary":
            outcome.primary_hours += duration
        elif gs.mode == "secondary":
            outcome.secondary_hours += duration
        else:  # "down" and the explicit "failover" blip are both downtime
            outcome.downtime_hours += duration
        gs.mode = new_mode
        gs.mode_since = now

    def go_down(gs: _GroupState, now: float) -> None:
        if gs.mode != "down":
            transition(gs, now, "down")

    def come_up(gs: _GroupState, now: float, mode: str) -> None:
        transition(gs, now, mode)

    def release_pool(gs: _GroupState) -> None:
        if gs.secondary is not None:
            pool_used[gs.secondary] = pool_used.get(gs.secondary, 0) - gs.servers

    for event in queue.drain_until(horizon):
        now = event.time_hours
        site = event.site

        if event.kind is EventKind.SITE_FAIL:
            report.outages += 1
            down_sites.add(site)
            report.concurrent_failure_peak = max(
                report.concurrent_failure_peak, len(down_sites)
            )
            for gs in groups.values():
                outcome = report.groups[gs.name]
                if gs.primary == site and gs.mode == "primary":
                    if gs.secondary is None:
                        go_down(gs, now)
                        continue
                    demand = pool_used.get(gs.secondary, 0) + gs.servers
                    capacity = pool_size.get(gs.secondary, 0)
                    if gs.secondary in down_sites or demand > capacity:
                        report.shortfalls.append(
                            PoolShortfall(now, gs.secondary, demand, capacity)
                        )
                        outcome.denied_failovers += 1
                        go_down(gs, now)
                        continue
                    # Failover: an explicit blip interval (charged to
                    # downtime), then serve from the secondary.
                    pool_used[gs.secondary] = demand
                    outcome.failovers += 1
                    gs.failover_seq += 1
                    transition(gs, now, "failover")
                    queue.push(
                        now + config.failover_hours,
                        EventKind.FAILOVER_COMPLETE,
                        group=gs.name,
                        value=float(gs.failover_seq),
                    )
                elif gs.secondary == site and gs.mode in ("secondary", "failover"):
                    # The refuge failed — mid-blip counts too.
                    release_pool(gs)
                    go_down(gs, now)

        elif event.kind is EventKind.FAILOVER_COMPLETE:
            gs = groups[event.group]
            if gs.mode == "failover" and event.value == float(gs.failover_seq):
                come_up(gs, now, "secondary")
            # A stale token (the blip was aborted by a failback or a
            # secondary loss) promotes nothing.

        elif event.kind is EventKind.SITE_REPAIR:
            down_sites.discard(site)
            for gs in groups.values():
                if gs.primary != site:
                    continue
                if gs.mode in ("secondary", "failover"):
                    # Failback — from mid-blip, the outage was shorter
                    # than the blip and the group returns directly.
                    release_pool(gs)
                    report.groups[gs.name].failbacks += 1
                    transition(gs, now, "primary")
                elif gs.mode == "down":
                    come_up(gs, now, "primary")

    # Close every open mode interval at the horizon.
    sites_by_name = {dc.name: dc for dc in state.target_datacenters}
    sites_by_name.update({dc.name: dc for dc in state.current_datacenters})
    for g in state.app_groups:
        gs = groups[g.name]
        transition(gs, horizon, gs.mode)
        outcome = report.groups[g.name]
        if g.total_users == 0:
            continue
        primary_site = sites_by_name.get(gs.primary)
        secondary_site = sites_by_name.get(gs.secondary) if gs.secondary else None
        uptime = outcome.primary_hours + outcome.secondary_hours
        if uptime <= 0 or primary_site is None:
            continue
        latency = outcome.primary_hours * g.mean_latency(
            primary_site.latency_to_users
        )
        if secondary_site is not None and outcome.secondary_hours > 0:
            latency += outcome.secondary_hours * g.mean_latency(
                secondary_site.latency_to_users
            )
        outcome.experienced_latency_ms = latency / uptime

    return report


def compare_resilience(
    state: AsIsState,
    plans: dict[str, TransformationPlan],
    config: SimulatorConfig | None = None,
) -> dict[str, SimulationReport]:
    """Simulate several plans under *identical* outage samples.

    All plans see the same disasters (sampled over the union of their
    sites), so availability differences are attributable to the plans;
    the same seed yields the same per-plan reports for any subset of
    plans, because each plan filters one shared sample.
    """
    config = config or SimulatorConfig()
    horizon = config.horizon_months * HOURS_PER_MONTH
    all_sites = sorted({s for plan in plans.values() for s in plan.datacenters_used})
    outages = sample_outages(all_sites, horizon, config.failure)
    reports: dict[str, SimulationReport] = {}
    for name, plan in plans.items():
        relevant = [o for o in outages if o.site in set(plan.datacenters_used)]
        reports[name] = simulate_plan(state, plan, config=config, outages=relevant)
    return reports
