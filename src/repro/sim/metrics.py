"""Simulation outcome records."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GroupOutcome:
    """One application group's experience over the horizon."""

    name: str
    downtime_hours: float = 0.0
    failovers: int = 0
    failbacks: int = 0
    denied_failovers: int = 0  # wanted to fail over but pool/site unavailable
    primary_hours: float = 0.0
    secondary_hours: float = 0.0
    #: Uptime-weighted mean latency actually experienced (ms); ``None``
    #: for groups without users.
    experienced_latency_ms: float | None = None

    def availability(self, horizon_hours: float) -> float:
        """Fraction of the horizon the group was serving."""
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        return 1.0 - min(self.downtime_hours, horizon_hours) / horizon_hours


@dataclass
class PoolShortfall:
    """A moment a shared backup pool could not absorb demand."""

    time_hours: float
    site: str
    demand_servers: int
    pool_servers: int

    @property
    def shortfall_servers(self) -> int:
        return max(0, self.demand_servers - self.pool_servers)


@dataclass
class SimulationReport:
    """Everything the simulator measured.

    ``mean_availability`` is server-weighted: a 60-server group down for
    a day hurts more than a 1-server one.
    """

    horizon_hours: float
    outages: int = 0
    concurrent_failure_peak: int = 0
    groups: dict[str, GroupOutcome] = field(default_factory=dict)
    shortfalls: list[PoolShortfall] = field(default_factory=list)
    group_servers: dict[str, int] = field(default_factory=dict)

    @property
    def total_failovers(self) -> int:
        return sum(g.failovers for g in self.groups.values())

    @property
    def total_downtime_hours(self) -> float:
        return sum(g.downtime_hours for g in self.groups.values())

    @property
    def mean_availability(self) -> float:
        total = sum(self.group_servers.values())
        if total == 0:
            return 1.0
        return sum(
            outcome.availability(self.horizon_hours) * self.group_servers[name]
            for name, outcome in self.groups.items()
        ) / total

    @property
    def mean_experienced_latency_ms(self) -> float | None:
        """Server-weighted mean of per-group experienced latencies."""
        pairs = [
            (outcome.experienced_latency_ms, self.group_servers[name])
            for name, outcome in self.groups.items()
            if outcome.experienced_latency_ms is not None
        ]
        if not pairs:
            return None
        total = sum(weight for _, weight in pairs)
        return sum(lat * weight for lat, weight in pairs) / total

    @property
    def worst_group(self) -> GroupOutcome | None:
        if not self.groups:
            return None
        return max(self.groups.values(), key=lambda g: g.downtime_hours)

    def summary(self) -> str:
        """Short human-readable digest."""
        lines = [
            f"horizon: {self.horizon_hours / 730.0:.1f} months, "
            f"{self.outages} site outages "
            f"(peak {self.concurrent_failure_peak} concurrent)",
            f"server-weighted availability: {self.mean_availability:.5f}",
            f"failovers: {self.total_failovers}, "
            f"total downtime: {self.total_downtime_hours:.1f} h",
            f"pool shortfall events: {len(self.shortfalls)}",
        ]
        latency = self.mean_experienced_latency_ms
        if latency is not None:
            lines.insert(2, f"experienced mean latency: {latency:.1f} ms")
        worst = self.worst_group
        if worst is not None and worst.downtime_hours > 0:
            lines.append(
                f"worst group: {worst.name} "
                f"({worst.downtime_hours:.1f} h down, {worst.failovers} failovers)"
            )
        return "\n".join(lines)
