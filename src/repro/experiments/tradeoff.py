"""Fig. 9: the space-cost / WAN-cost tradeoff across the line.

Prices a fixed bundle of application groups at every data center on the
line: space grows geometrically with the location index while
dedicated-VPN WAN cost falls toward the users at location 9.  The total
is minimized strictly inside the line, severalfold below the most
expensive location — the paper's "7× cheaper" observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.entities import AsIsState
from ..core.wan import wan_cost
from ..datasets.scenarios import tradeoff_line_scenario


@dataclass
class LocationCost:
    """One bar group of Fig. 9."""

    location: str
    space_cost: float
    wan_cost: float
    power_labor_cost: float

    @property
    def total_cost(self) -> float:
        return self.space_cost + self.wan_cost + self.power_labor_cost


@dataclass
class TradeoffResult:
    """Per-location costs of hosting the bundle (Fig. 9's three series)."""

    locations: list[LocationCost] = field(default_factory=list)

    def totals(self) -> list[float]:
        return [loc.total_cost for loc in self.locations]

    @property
    def cheapest(self) -> LocationCost:
        return min(self.locations, key=lambda l: l.total_cost)

    @property
    def costliest(self) -> LocationCost:
        return max(self.locations, key=lambda l: l.total_cost)

    @property
    def spread(self) -> float:
        """How many times cheaper the best location is than the worst."""
        return self.costliest.total_cost / self.cheapest.total_cost

    @property
    def minimum_index(self) -> int:
        totals = self.totals()
        return totals.index(min(totals))


def price_bundle_everywhere(state: AsIsState) -> TradeoffResult:
    """Price the state's whole group bundle at each target data center."""
    params = state.params
    servers = sum(g.servers for g in state.app_groups)
    result = TradeoffResult()
    for dc in state.target_datacenters:
        space = dc.space_cost.total_cost(servers)
        wan = sum(wan_cost(g, dc, params, model="vpn") for g in state.app_groups)
        power_labor = servers * (
            params.server_power_kw * dc.power_cost_per_kw
            + dc.labor_cost_per_admin / params.servers_per_admin
        )
        result.locations.append(
            LocationCost(
                location=dc.name,
                space_cost=space,
                wan_cost=wan,
                power_labor_cost=power_labor,
            )
        )
    return result


def run_tradeoff(n_groups: int = 100) -> TradeoffResult:
    """Reproduce Fig. 9 with a bundle of ``n_groups`` one-server groups."""
    state = tradeoff_line_scenario(n_groups=n_groups)
    return price_bundle_everywhere(state)
