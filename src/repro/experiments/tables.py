"""Text rendering of every paper table and figure series.

The benchmark harness prints through these functions so running
``pytest benchmarks/ --benchmark-only`` regenerates, in text form, the
same rows and series the paper reports.
"""

from __future__ import annotations

from .comparison import CaseStudySuite, ComparisonResult
from .dr_cost_sweep import DRCostSweepResult
from .latency_sweep import LatencySweepResult
from .placement_growth import PlacementGrowthResult
from .tradeoff import TradeoffResult


def _fmt_money(value: float) -> str:
    return f"${value:,.0f}"


def render_comparison(result: ComparisonResult) -> str:
    """One panel of Fig. 4/6: the stacked cost bars, as rows."""
    title = f"{'Fig 6' if result.enable_dr else 'Fig 4'} — {result.dataset}"
    lines = [title, "-" * len(title)]
    header = f"{'algorithm':<12} {'cost':>14} {'latency pen.':>14} {'DR buy':>12} {'total':>14} {'viol.':>6} {'DCs':>4}"
    lines.append(header)
    for r in [result.asis, result.manual, result.greedy, result.etransform]:
        lines.append(
            f"{r.algorithm:<12} {_fmt_money(r.operational_cost):>14} "
            f"{_fmt_money(r.latency_penalty):>14} {_fmt_money(r.dr_purchase):>12} "
            f"{_fmt_money(r.total_cost):>14} {r.latency_violations:>6d} {r.datacenters_used:>4d}"
        )
    return "\n".join(lines)


def render_reduction_table(suite: CaseStudySuite) -> str:
    """Fig. 4(d) / 6(d): percentage cost reduction vs as-is."""
    label = "Fig 6(d)" if suite.enable_dr else "Fig 4(d)"
    lines = [f"{label} — Cost reduction vs as-is"]
    lines.append(f"{'dataset':<14} {'manual':>8} {'greedy':>8} {'etransform':>11}")
    for result in suite.results:
        lines.append(
            f"{result.dataset:<14} "
            f"{result.reduction('manual'):>+8.0%} "
            f"{result.reduction('greedy'):>+8.0%} "
            f"{result.reduction('etransform'):>+11.0%}"
        )
    return "\n".join(lines)


def render_violation_table(suite: CaseStudySuite) -> str:
    """Fig. 4(e) / 6(e): latency-violation counts."""
    label = "Fig 6(e)" if suite.enable_dr else "Fig 4(e)"
    lines = [f"{label} — Latency violations"]
    lines.append(f"{'dataset':<14} {'manual':>8} {'greedy':>8} {'etransform':>11}")
    for result in suite.results:
        lines.append(
            f"{result.dataset:<14} "
            f"{result.violations('manual'):>8d} "
            f"{result.violations('greedy'):>8d} "
            f"{result.violations('etransform'):>11d}"
        )
    return "\n".join(lines)


def render_latency_sweep(result: LatencySweepResult, key: str = "total_cost") -> str:
    """One panel of Fig. 7 as series rows (key selects the panel)."""
    panel = {
        "total_cost": "Fig 7(a) — Total cost vs latency penalty",
        "space_cost": "Fig 7(b) — Space cost vs latency penalty",
        "mean_latency_ms": "Fig 7(c) — Mean latency vs latency penalty",
    }.get(key, key)
    lines = [panel]
    for series in result.series:
        xs = series.xs()
        ys = series.ys(key)
        pairs = "  ".join(f"({x:g}, {y:,.1f})" for x, y in zip(xs, ys))
        lines.append(f"  {series.name}: {pairs}")
    return "\n".join(lines)


def render_dr_sweep(result: DRCostSweepResult) -> str:
    """Fig. 8's two curves, row per ζ."""
    lines = ["Fig 8 — Influence of DR server cost"]
    lines.append(f"{'dr server cost':>14} {'DCs used':>9} {'DR servers':>11}")
    for zeta, dcs, servers in zip(
        result.dr_costs(), result.datacenters_used(), result.dr_servers()
    ):
        lines.append(f"{zeta:>14,.0f} {dcs:>9d} {servers:>11d}")
    return "\n".join(lines)


def render_tradeoff(result: TradeoffResult) -> str:
    """Fig. 9's per-location bars."""
    lines = ["Fig 9 — Space cost vs WAN cost tradeoff"]
    lines.append(f"{'location':<12} {'space':>12} {'WAN':>12} {'total':>12}")
    for loc in result.locations:
        lines.append(
            f"{loc.location:<12} {_fmt_money(loc.space_cost):>12} "
            f"{_fmt_money(loc.wan_cost):>12} {_fmt_money(loc.total_cost):>12}"
        )
    lines.append(
        f"cheapest={result.cheapest.location} costliest={result.costliest.location} "
        f"spread={result.spread:.1f}x"
    )
    return "\n".join(lines)


def render_placement_growth(result: PlacementGrowthResult) -> str:
    """Fig. 10's staircase and fill order."""
    lines = ["Fig 10 — Placement by eTransform as the estate grows"]
    lines.append(f"{'groups':>7} {'DCs used':>9}  fill")
    for point in result.points:
        fill = ", ".join(
            f"{name}:{count}" for name, count in sorted(point.fill.items())
        )
        lines.append(f"{point.n_groups:>7d} {point.datacenters_used:>9d}  {fill}")
    lines.append("cost order: " + " < ".join(result.cost_order))
    return "\n".join(lines)
