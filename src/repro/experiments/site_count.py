"""Capacity planning: how many target sites does the estate need?

The transformations that motivate the paper pick a target-site count up
front (US federal: 2100 → "less than 1000"; UK: 120 → 10; HP: 85 → 8).
This study sweeps the number of candidate sites offered to the
optimizer and reports the cost curve — diminishing returns appear where
extra sites stop buying latency or price diversity — plus how many of
the offered sites the optimizer actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.entities import AsIsState
from ..core.formulation import InfeasibleModelError
from ..core.planner import ETransformPlanner, PlannerOptions, PlanningError
from ..core.validation import StateValidationError


@dataclass
class SiteCountPoint:
    """Plan outcome when only the first ``offered`` sites are available."""

    offered: int
    used: int
    total_cost: float
    latency_violations: int
    feasible: bool = True


@dataclass
class SiteCountResult:
    """The sweep; infeasible prefixes are recorded, not skipped."""

    points: list[SiteCountPoint] = field(default_factory=list)

    def feasible_points(self) -> list[SiteCountPoint]:
        return [p for p in self.points if p.feasible]

    @property
    def knee(self) -> SiteCountPoint:
        """First point within 5 % of the best achievable cost."""
        feasible = self.feasible_points()
        if not feasible:
            raise ValueError("no feasible sweep point")
        best = min(p.total_cost for p in feasible)
        for p in feasible:
            if p.total_cost <= best * 1.05:
                return p
        return feasible[-1]

    def render(self) -> str:
        lines = ["Site-count sweep — cost of offering the first k candidate sites"]
        lines.append(f"{'offered':>8} {'used':>5} {'total':>14} {'viol':>5}")
        for p in self.points:
            if not p.feasible:
                lines.append(f"{p.offered:>8d} {'—':>5} {'infeasible':>14} {'—':>5}")
                continue
            lines.append(
                f"{p.offered:>8d} {p.used:>5d} ${p.total_cost:>13,.0f} "
                f"{p.latency_violations:>5d}"
            )
        knee = self.knee
        lines.append(
            f"knee: {knee.offered} offered sites reach within 5% of the best cost"
        )
        return "\n".join(lines)


def run_site_count(
    state: AsIsState,
    counts: tuple[int, ...] | None = None,
    backend: str = "auto",
    solver_options: dict | None = None,
) -> SiteCountResult:
    """Sweep prefixes of the candidate-site list (cheapest-diverse order
    as generated) and re-optimize for each."""
    solver_options = dict(solver_options or {})
    solver_options.setdefault("mip_rel_gap", 0.01)
    total = len(state.target_datacenters)
    if counts is None:
        counts = tuple(range(1, total + 1))
    if any(c < 1 or c > total for c in counts):
        raise ValueError(f"counts must lie in [1, {total}]")

    result = SiteCountResult()
    for count in sorted(counts):
        subset = replace(
            state, target_datacenters=state.target_datacenters[:count]
        )
        options = PlannerOptions(backend=backend, solver_options=solver_options)
        try:
            plan = ETransformPlanner(subset, options).build_plan()
        except (PlanningError, StateValidationError, InfeasibleModelError):
            result.points.append(
                SiteCountPoint(
                    offered=count, used=0, total_cost=float("inf"),
                    latency_violations=0, feasible=False,
                )
            )
            continue
        result.points.append(
            SiteCountPoint(
                offered=count,
                used=len(plan.datacenters_used),
                total_cost=plan.total_cost,
                latency_violations=plan.latency_violations,
            )
        )
    return result
