"""Experiment harnesses reproducing every table and figure of the paper."""

from .comparison import (
    CASE_STUDY_LOADERS,
    CaseStudySuite,
    ComparisonResult,
    run_case_studies,
    run_comparison,
)
from .dr_cost_sweep import DEFAULT_DR_COSTS, DRCostSweepResult, run_dr_cost_sweep
from .harness import AlgorithmResult, SweepPoint, SweepSeries, timed_plan
from .latency_sweep import (
    DEFAULT_PENALTIES,
    DEFAULT_USER_SPLITS,
    LatencySweepResult,
    mean_user_latency,
    run_latency_sweep,
    split_label,
)
from .placement_growth import (
    DEFAULT_GROUP_COUNTS,
    PlacementGrowthResult,
    run_placement_growth,
)
from .resilience import ResilienceResult, ResilienceRow, run_resilience
from .site_count import SiteCountPoint, SiteCountResult, run_site_count
from .tradeoff import TradeoffResult, price_bundle_everywhere, run_tradeoff
from . import tables

__all__ = [
    "AlgorithmResult",
    "CASE_STUDY_LOADERS",
    "CaseStudySuite",
    "ComparisonResult",
    "DEFAULT_DR_COSTS",
    "DEFAULT_GROUP_COUNTS",
    "DEFAULT_PENALTIES",
    "DEFAULT_USER_SPLITS",
    "DRCostSweepResult",
    "LatencySweepResult",
    "PlacementGrowthResult",
    "ResilienceResult",
    "ResilienceRow",
    "SiteCountPoint",
    "SiteCountResult",
    "SweepPoint",
    "SweepSeries",
    "TradeoffResult",
    "mean_user_latency",
    "price_bundle_everywhere",
    "run_case_studies",
    "run_comparison",
    "run_dr_cost_sweep",
    "run_latency_sweep",
    "run_placement_growth",
    "run_resilience",
    "run_site_count",
    "run_tradeoff",
    "split_label",
    "tables",
    "timed_plan",
]
