"""Fig. 7: influence of the latency penalty on the plan.

Sweeps the per-band latency penalty for five user distributions between
location 0 (cheap end of the line) and location 9 (costly end), and
records for each solve the three quantities of Fig. 7's panels:
total cost (a), space cost (b) and user-weighted mean latency (c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from ..core.entities import AsIsState
from ..core.plan import TransformationPlan
from ..api import solve as unified_solve
from ..core.planner import PlannerOptions
from ..datasets.scenarios import latency_line_scenario
from ..parallel import parallel_map
from .harness import SweepPoint, SweepSeries

#: The paper's five user splits, as fraction of users at location 0
#: (west end).  1.0 = "All users in location 0".
DEFAULT_USER_SPLITS = (1.0, 0.75, 0.5, 0.25, 0.0)

#: Default penalty sweep, $ per user per 10 ms band.
DEFAULT_PENALTIES = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0)


def split_label(fraction_at_west: float) -> str:
    """Legend label matching the paper's wording."""
    if fraction_at_west == 1.0:
        return "All users in location 0"
    if fraction_at_west == 0.0:
        return "All users in location 9"
    if fraction_at_west == 0.5:
        return "All users equally distributed in 0 and 9"
    return f"{fraction_at_west:.0%} users in location 0"


def mean_user_latency(state: AsIsState, plan: TransformationPlan) -> float:
    """User-weighted mean latency over every group's placement (ms)."""
    by_name = {dc.name: dc for dc in state.target_datacenters}
    weighted = 0.0
    users = 0.0
    for group in state.app_groups:
        if group.total_users == 0:
            continue
        dc = by_name[plan.placement[group.name]]
        weighted += group.mean_latency(dc.latency_to_users) * group.total_users
        users += group.total_users
    return weighted / users if users else 0.0


@dataclass
class LatencySweepResult:
    """All series of Fig. 7; each point carries total/space/latency."""

    series: list[SweepSeries] = field(default_factory=list)

    def by_split(self, fraction_at_west: float) -> SweepSeries:
        label = split_label(fraction_at_west)
        for s in self.series:
            if s.name == label:
                return s
        raise KeyError(f"no series {label!r}")


def _latency_point(
    task: tuple[float, float],
    backend: str,
    n_groups: int,
    total_servers: int,
    solver_options: dict,
) -> SweepPoint:
    """Solve one (split, penalty) point (module-level for process fan-out)."""
    split, penalty = task
    state = latency_line_scenario(
        penalty_per_band=penalty,
        fraction_at_west=split,
        n_groups=n_groups,
        total_servers=total_servers,
    )
    plan = unified_solve(
        state,
        method="milp",
        options=PlannerOptions(backend=backend, solver_options=solver_options),
    ).plan
    return SweepPoint(
        parameter=penalty,
        values={
            "total_cost": plan.breakdown.total,
            "space_cost": plan.breakdown.space,
            "mean_latency_ms": mean_user_latency(state, plan),
            "latency_penalty": plan.breakdown.latency_penalty,
        },
    )


def run_latency_sweep(
    penalties: tuple[float, ...] = DEFAULT_PENALTIES,
    user_splits: tuple[float, ...] = DEFAULT_USER_SPLITS,
    backend: str = "auto",
    n_groups: int = 190,
    total_servers: int = 1070,
    solver_options: dict | None = None,
    jobs: int = 1,
) -> LatencySweepResult:
    """Reproduce Fig. 7 (a, b, c).

    Every (user split, penalty) point is an independent solve; ``jobs >
    1`` fans the grid out across worker processes.
    """
    solver_options = dict(solver_options or {})
    solver_options.setdefault("mip_rel_gap", 1e-4)
    tasks = [(split, penalty) for split in user_splits for penalty in penalties]
    points = parallel_map(
        partial(
            _latency_point,
            backend=backend,
            n_groups=n_groups,
            total_servers=total_servers,
            solver_options=solver_options,
        ),
        tasks,
        jobs=jobs,
    )
    result = LatencySweepResult()
    for i, split in enumerate(user_splits):
        series = SweepSeries(name=split_label(split))
        series.points = points[i * len(penalties) : (i + 1) * len(penalties)]
        result.series.append(series)
    return result
