"""Figs. 4 and 6: four-way comparison on the three case studies.

For a dataset, runs AS-IS (or AS-IS+DR), MANUAL, GREEDY and eTRANSFORM
and reports total cost, the cost/penalty split, percentage reductions
(Fig. 4(d)/6(d)) and latency-violation counts (Fig. 4(e)/6(e)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import asis_plan, asis_with_dr_plan, manual_plan, run_greedy
from ..core.entities import AsIsState
from ..core.planner import PlannerOptions, ETransformPlanner
from ..datasets import load_enterprise1, load_federal, load_florida
from .harness import AlgorithmResult, timed_plan

#: Dataset-name → loader, in the paper's order.
CASE_STUDY_LOADERS = {
    "enterprise1": load_enterprise1,
    "florida": load_florida,
    "federal": load_federal,
}


@dataclass
class ComparisonResult:
    """All four bars of one Fig. 4 / Fig. 6 panel."""

    dataset: str
    enable_dr: bool
    asis: AlgorithmResult
    manual: AlgorithmResult
    greedy: AlgorithmResult
    etransform: AlgorithmResult

    @property
    def algorithms(self) -> list[AlgorithmResult]:
        return [self.manual, self.greedy, self.etransform]

    def reduction(self, algorithm: str) -> float:
        """Signed fractional cost change vs as-is (−0.43 = 43 % cheaper)."""
        result = self._by_name(algorithm)
        return (result.total_cost - self.asis.total_cost) / self.asis.total_cost

    def violations(self, algorithm: str) -> int:
        return self._by_name(algorithm).latency_violations

    def _by_name(self, algorithm: str) -> AlgorithmResult:
        for result in [self.asis, self.manual, self.greedy, self.etransform]:
            if result.algorithm == algorithm:
                return result
        raise KeyError(f"no algorithm named {algorithm!r}")


def run_comparison(
    state: AsIsState,
    enable_dr: bool = False,
    backend: str = "auto",
    wan_model: str = "metered",
    manual_k: int = 2,
    solver_options: dict | None = None,
) -> ComparisonResult:
    """Run the full four-way comparison on one as-is state."""
    solver_options = dict(solver_options or {})

    if enable_dr:
        asis = timed_plan("as-is", lambda: asis_with_dr_plan(state, wan_model=wan_model))
    else:
        asis = timed_plan("as-is", lambda: asis_plan(state, wan_model=wan_model))

    manual = timed_plan(
        "manual",
        lambda: manual_plan(state, k=manual_k, enable_dr=enable_dr, wan_model=wan_model),
    )
    greedy = timed_plan(
        "greedy", lambda: run_greedy(state, enable_dr=enable_dr, wan_model=wan_model)
    )

    options = PlannerOptions(
        wan_model=wan_model,
        enable_dr=enable_dr,
        backend=backend,
        solver_options=solver_options,
    )
    etransform = timed_plan(
        "etransform", lambda: ETransformPlanner(state, options).build_plan()
    )

    return ComparisonResult(
        dataset=state.name,
        enable_dr=enable_dr,
        asis=asis,
        manual=manual,
        greedy=greedy,
        etransform=etransform,
    )


@dataclass
class CaseStudySuite:
    """Fig. 4 or Fig. 6 in full: one comparison per dataset."""

    enable_dr: bool
    results: list[ComparisonResult] = field(default_factory=list)

    def result(self, dataset: str) -> ComparisonResult:
        for r in self.results:
            if r.dataset == dataset:
                return r
        raise KeyError(f"no result for dataset {dataset!r}")


def run_case_studies(
    enable_dr: bool = False,
    datasets: tuple[str, ...] = ("enterprise1", "florida", "federal"),
    scales: dict[str, float] | None = None,
    backend: str = "auto",
    solver_options: dict | None = None,
) -> CaseStudySuite:
    """Run Fig. 4 (or, with ``enable_dr``, Fig. 6) across the case studies.

    ``scales`` maps dataset name → generator scale; the benchmarks pass
    reduced scales for the joint-DR federal model (see EXPERIMENTS.md).
    """
    scales = scales or {}
    suite = CaseStudySuite(enable_dr=enable_dr)
    for name in datasets:
        try:
            loader = CASE_STUDY_LOADERS[name]
        except KeyError:
            raise ValueError(
                f"unknown dataset {name!r}; choose from {sorted(CASE_STUDY_LOADERS)}"
            ) from None
        state = loader(scale=scales.get(name, 1.0))
        suite.results.append(
            run_comparison(
                state,
                enable_dr=enable_dr,
                backend=backend,
                solver_options=solver_options,
            )
        )
    return suite
