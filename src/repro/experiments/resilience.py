"""Resilience study: what the DR plan buys when disasters actually hit.

Extends the paper's static DR analysis (Section IV) with the dynamic
question it implies: replay identical sampled disasters against three
designs — no DR, eTransform's shared single-failure pools, and dedicated
per-group backups — and compare monthly cost, availability, failovers
and shared-pool shortfalls (double failures outrunning a shared pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.entities import AsIsState
from ..core.planner import ETransformPlanner, PlannerOptions
from ..sim import (
    FailureModelConfig,
    SimulationReport,
    SimulatorConfig,
    compare_resilience,
)


@dataclass
class ResilienceRow:
    """One design's outcome."""

    variant: str
    monthly_cost: float
    availability: float
    failovers: int
    shortfalls: int
    downtime_hours: float


@dataclass
class ResilienceResult:
    """All three designs under the same disasters."""

    horizon_months: float
    rows: list[ResilienceRow] = field(default_factory=list)

    def row(self, variant: str) -> ResilienceRow:
        for r in self.rows:
            if r.variant == variant:
                return r
        raise KeyError(f"no variant {variant!r}")

    def render(self) -> str:
        lines = [
            f"Resilience over {self.horizon_months:.0f} months of sampled disasters"
        ]
        lines.append(
            f"{'variant':<14} {'monthly cost':>14} {'availability':>13} "
            f"{'failovers':>10} {'shortfalls':>11} {'downtime':>10}"
        )
        for r in self.rows:
            lines.append(
                f"{r.variant:<14} ${r.monthly_cost:>13,.0f} {r.availability:>13.5f} "
                f"{r.failovers:>10d} {r.shortfalls:>11d} {r.downtime_hours:>9.1f}h"
            )
        return "\n".join(lines)


def run_resilience(
    state: AsIsState,
    horizon_months: float = 240.0,
    mtbf_hours: float = 3 * 8760.0,
    mttr_hours: float = 120.0,
    seed: int = 7,
    backend: str = "auto",
    solver_options: dict | None = None,
) -> ResilienceResult:
    """Plan the three designs and simulate them under shared outages."""
    solver_options = dict(solver_options or {})
    solver_options.setdefault("mip_rel_gap", 0.02)
    solver_options.setdefault("time_limit", 120)

    def planner(**kw) -> ETransformPlanner:
        return ETransformPlanner(
            state,
            PlannerOptions(backend=backend, solver_options=solver_options, **kw),
        )

    plans = {
        "no-dr": planner().build_plan(),
        "shared-pools": planner(enable_dr=True).build_plan(),
        "dedicated": planner(enable_dr=True, dedicated_backups=True).build_plan(),
    }
    config = SimulatorConfig(
        horizon_months=horizon_months,
        failure=FailureModelConfig(
            mtbf_hours=mtbf_hours, mttr_hours=mttr_hours, seed=seed
        ),
    )
    reports: dict[str, SimulationReport] = compare_resilience(state, plans, config)

    result = ResilienceResult(horizon_months=horizon_months)
    for variant, plan in plans.items():
        report = reports[variant]
        result.rows.append(
            ResilienceRow(
                variant=variant,
                monthly_cost=plan.total_cost,
                availability=report.mean_availability,
                failovers=report.total_failovers,
                shortfalls=len(report.shortfalls),
                downtime_hours=report.total_downtime_hours,
            )
        )
    return result
