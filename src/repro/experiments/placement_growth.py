"""Fig. 10: placement order as the estate grows.

Sweeps the number of application groups from 0 to 700 over the
space/WAN-tradeoff line (capacity 100 per site) and records which data
centers eTransform fills.  The paper's observation: the globally
cheapest location fills first, then its neighbours in increasing
total-cost order — the legend of Fig. 10 reads locations
4, 5, 3, 6, 2, 7, 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..api import solve as unified_solve
from ..core.planner import PlannerOptions
from ..datasets.scenarios import tradeoff_line_scenario
from .tradeoff import price_bundle_everywhere

#: The paper's x-axis.
DEFAULT_GROUP_COUNTS = (100, 200, 300, 400, 500, 600, 700)


@dataclass
class GrowthPoint:
    """Placement snapshot at one estate size."""

    n_groups: int
    datacenters_used: int
    fill: dict[str, int] = field(default_factory=dict)


@dataclass
class PlacementGrowthResult:
    """Fig. 10's staircase plus the cost-order ground truth."""

    points: list[GrowthPoint] = field(default_factory=list)
    cost_order: list[str] = field(default_factory=list)

    def datacenters_used(self) -> list[int]:
        return [p.datacenters_used for p in self.points]

    def first_use_order(self) -> list[str]:
        """Data centers in the order the sweep first used them."""
        seen: list[str] = []
        for point in self.points:
            for name in sorted(point.fill, key=lambda n: -point.fill[n]):
                if name not in seen:
                    seen.append(name)
        return seen


def run_placement_growth(
    group_counts: tuple[int, ...] = DEFAULT_GROUP_COUNTS,
    backend: str = "auto",
    solver_options: dict | None = None,
) -> PlacementGrowthResult:
    """Reproduce Fig. 10."""
    solver_options = dict(solver_options or {})
    solver_options.setdefault("mip_rel_gap", 1e-4)
    result = PlacementGrowthResult()

    # Ground truth: the per-bundle total-cost order of the locations.
    reference = price_bundle_everywhere(tradeoff_line_scenario(n_groups=100))
    result.cost_order = [
        loc.location
        for loc in sorted(reference.locations, key=lambda l: l.total_cost)
    ]

    for n in group_counts:
        state = tradeoff_line_scenario(n_groups=n)
        plan = unified_solve(
            state,
            method="milp",
            options=PlannerOptions(
                backend=backend, wan_model="vpn", solver_options=solver_options
            ),
        ).plan
        fill = Counter(plan.placement.values())
        result.points.append(
            GrowthPoint(
                n_groups=n,
                datacenters_used=len(fill),
                fill=dict(fill),
            )
        )
    return result
