"""Fig. 8: influence of the DR server cost ζ.

Sweeps ζ over decades (the paper uses 10⁰–10⁴) on the line scenario with
latency penalties off, planning consolidation + DR jointly, and records
the number of data centers used and the total number of DR servers
purchased.  Expected shape: cheap backups → concentrate everything in
two sites and mirror in full; expensive backups → spread primaries so a
small shared pool covers the worst single failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from ..api import solve as unified_solve
from ..core.planner import PlannerOptions
from ..datasets.scenarios import latency_line_scenario
from ..parallel import parallel_map
from .harness import SweepPoint

#: The paper's decade sweep of ζ.
DEFAULT_DR_COSTS = (1.0, 10.0, 100.0, 1000.0, 10_000.0)


def _dr_point(
    zeta: float,
    backend: str,
    n_groups: int,
    total_servers: int,
    solver_options: dict,
) -> SweepPoint:
    """Solve one ζ point (module-level so it can cross a process boundary)."""
    state = latency_line_scenario(
        penalty_per_band=0.0,
        fraction_at_west=1.0,
        n_groups=n_groups,
        total_servers=total_servers,
        space_growth=0.8,
        space_step_per_location=0.0,
    )
    state.params.dr_server_cost = zeta
    plan = unified_solve(
        state,
        method="milp",
        options=PlannerOptions(
            enable_dr=True, backend=backend, solver_options=solver_options
        ),
    ).plan
    return SweepPoint(
        parameter=zeta,
        values={
            "datacenters_used": float(len(plan.datacenters_used)),
            "primary_datacenters": float(len(set(plan.placement.values()))),
            "dr_servers": float(sum(plan.backup_servers.values())),
            "total_cost": plan.breakdown.total,
        },
    )


@dataclass
class DRCostSweepResult:
    """The two curves of Fig. 8."""

    points: list[SweepPoint] = field(default_factory=list)

    def dr_costs(self) -> list[float]:
        return [p.parameter for p in self.points]

    def datacenters_used(self) -> list[int]:
        return [int(p.values["datacenters_used"]) for p in self.points]

    def dr_servers(self) -> list[int]:
        return [int(p.values["dr_servers"]) for p in self.points]


def run_dr_cost_sweep(
    dr_costs: tuple[float, ...] = DEFAULT_DR_COSTS,
    backend: str = "auto",
    n_groups: int = 80,
    total_servers: int = 450,
    solver_options: dict | None = None,
    jobs: int = 1,
) -> DRCostSweepResult:
    """Reproduce Fig. 8.

    The default group count is reduced from enterprise1's 190 (the joint
    DR MILP at 190×10 needs minutes per ζ point); the pool-sharing
    economics that drive the curve are size-independent.  The space ramp
    is convex (geometric) so that concentrating in two sites is optimal
    when backups are nearly free — see EXPERIMENTS.md.

    Each ζ point is an independent solve; ``jobs > 1`` fans them out
    across worker processes.
    """
    solver_options = dict(solver_options or {})
    solver_options.setdefault("mip_rel_gap", 0.02)
    solver_options.setdefault("time_limit", 60)
    points = parallel_map(
        partial(
            _dr_point,
            backend=backend,
            n_groups=n_groups,
            total_servers=total_servers,
            solver_options=solver_options,
        ),
        dr_costs,
        jobs=jobs,
    )
    return DRCostSweepResult(points=points)
