"""Shared experiment plumbing: result records, timing, parallel fan-out.

Every experiment module returns plain dataclasses so benchmarks can both
assert the paper's qualitative shape and print the same rows/series the
paper reports (:mod:`repro.experiments.tables` renders them).

:func:`parallel_map` is the process-level fan-out used by the sweep
experiments (CLI ``--jobs N``): each sweep point is an independent MILP
solve, so they scale linearly across workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from ..core.entities import AsIsState
from ..core.plan import TransformationPlan
from ..telemetry import SolveStats

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], jobs: int = 1
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``jobs <= 1`` runs a plain serial loop (no pickling requirements);
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` with
    ``min(jobs, len(items))`` workers is used and results come back in
    input order.  ``fn`` and the items must be picklable in that case —
    pass a module-level function (or :func:`functools.partial` over one).
    """
    work: Sequence[_T] = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))


@dataclass
class AlgorithmResult:
    """One algorithm's outcome on one dataset (a bar in Fig. 4/6).

    ``solve_stats`` carries the optimizer's search statistics (B&B
    nodes, LP iterations, bound gap, presolve reductions) for the
    algorithms that ran a solver; heuristics leave it ``None``.
    """

    algorithm: str
    total_cost: float
    operational_cost: float
    latency_penalty: float
    dr_purchase: float
    latency_violations: int
    datacenters_used: int
    runtime_seconds: float
    plan: TransformationPlan | None = None
    solve_stats: SolveStats | None = None

    @classmethod
    def from_plan(
        cls, algorithm: str, plan: TransformationPlan, runtime_seconds: float
    ) -> "AlgorithmResult":
        return cls(
            algorithm=algorithm,
            total_cost=plan.breakdown.total,
            operational_cost=plan.breakdown.operational,
            latency_penalty=plan.breakdown.latency_penalty,
            dr_purchase=plan.breakdown.dr_purchase,
            latency_violations=plan.latency_violations,
            datacenters_used=len(plan.datacenters_used),
            runtime_seconds=runtime_seconds,
            plan=plan,
            solve_stats=plan.solver_stats,
        )


def timed_plan(
    algorithm: str, fn: Callable[[], TransformationPlan]
) -> AlgorithmResult:
    """Run a planning function under a wall-clock timer."""
    start = time.monotonic()
    plan = fn()
    elapsed = time.monotonic() - start
    return AlgorithmResult.from_plan(algorithm, plan, elapsed)


@dataclass
class SweepPoint:
    """One x-axis point of a parameter sweep."""

    parameter: float
    values: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepSeries:
    """A named series over a swept parameter (one line in Fig. 7/8)."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [p.parameter for p in self.points]

    def ys(self, key: str) -> list[float]:
        return [p.values[key] for p in self.points]


def state_label(state: AsIsState) -> str:
    """Short dataset label for tables."""
    return state.name
