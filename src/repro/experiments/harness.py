"""Shared experiment plumbing: result records, timing, parallel fan-out.

Every experiment module returns plain dataclasses so benchmarks can both
assert the paper's qualitative shape and print the same rows/series the
paper reports (:mod:`repro.experiments.tables` renders them).

The process-level fan-out that used to live here (``parallel_map``,
CLI ``--jobs N``) moved to the shared :mod:`repro.parallel` module so
the decomposition engine's pricing loop can use it too; importing it
from this module still works but raises a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from ..core.entities import AsIsState
from ..core.plan import TransformationPlan
from ..telemetry import SolveStats


def __getattr__(name: str):
    if name == "parallel_map":
        warnings.warn(
            "repro.experiments.harness.parallel_map moved to "
            "repro.parallel.parallel_map; this alias will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..parallel import parallel_map

        return parallel_map
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class AlgorithmResult:
    """One algorithm's outcome on one dataset (a bar in Fig. 4/6).

    ``solve_stats`` carries the optimizer's search statistics (B&B
    nodes, LP iterations, bound gap, presolve reductions) for the
    algorithms that ran a solver; heuristics leave it ``None``.
    """

    algorithm: str
    total_cost: float
    operational_cost: float
    latency_penalty: float
    dr_purchase: float
    latency_violations: int
    datacenters_used: int
    runtime_seconds: float
    plan: TransformationPlan | None = None
    solve_stats: SolveStats | None = None

    @classmethod
    def from_plan(
        cls, algorithm: str, plan: TransformationPlan, runtime_seconds: float
    ) -> "AlgorithmResult":
        return cls(
            algorithm=algorithm,
            total_cost=plan.breakdown.total,
            operational_cost=plan.breakdown.operational,
            latency_penalty=plan.breakdown.latency_penalty,
            dr_purchase=plan.breakdown.dr_purchase,
            latency_violations=plan.latency_violations,
            datacenters_used=len(plan.datacenters_used),
            runtime_seconds=runtime_seconds,
            plan=plan,
            solve_stats=plan.solver_stats,
        )


def timed_plan(
    algorithm: str, fn: Callable[[], TransformationPlan]
) -> AlgorithmResult:
    """Run a planning function under a wall-clock timer."""
    start = time.monotonic()
    plan = fn()
    elapsed = time.monotonic() - start
    return AlgorithmResult.from_plan(algorithm, plan, elapsed)


@dataclass
class SweepPoint:
    """One x-axis point of a parameter sweep."""

    parameter: float
    values: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepSeries:
    """A named series over a swept parameter (one line in Fig. 7/8)."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [p.parameter for p in self.points]

    def ys(self, key: str) -> list[float]:
        return [p.values[key] for p in self.points]


def state_label(state: AsIsState) -> str:
    """Short dataset label for tables."""
    return state.name
