"""Online dynamic consolidation: rolling re-planning over event streams.

The paper plans one-shot transformations; this package adds the
continuous version (OpenStack-Neat-style).  A controller watches
utilization as load-change and failure events stream in, detects
underload/overload threshold crossings, re-solves through the
incremental engine (:class:`repro.core.incremental.RevisionedModel`
deltas + a warm :class:`repro.lp.SolveCache`) with a migration-cost
term in the objective, and emits *migration deltas* — not full plans.
"""

from .controller import ControllerConfig, OnlineController
from .deltas import PlanDelta, diff_placements, oscillating_moves
from .replay import ReplayConfig, ReplayResult, run_replay

__all__ = [
    "ControllerConfig",
    "OnlineController",
    "PlanDelta",
    "ReplayConfig",
    "ReplayResult",
    "diff_placements",
    "oscillating_moves",
    "run_replay",
]
