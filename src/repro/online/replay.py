"""Replay an event trace through the online controller.

:func:`run_replay` is the deterministic harness behind the
``etransform replay`` CLI subcommand and the online benchmark: it
merges a load trace and an outage list into one :class:`EventQueue`,
drains it in timestamp batches (all events at one instant are observed
before the controller decides), and returns the emitted delta sequence
plus the ``online.*`` counter movement.  Replaying the same trace twice
yields byte-identical delta sequences — the no-thrash contract the
tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.entities import AsIsState
from ..core.planner import PlannerOptions
from ..sim.events import Event, EventKind, EventQueue
from ..sim.failures import Outage
from ..sim.load import LoadEvent
from ..telemetry import metrics
from .controller import ControllerConfig, OnlineController
from .deltas import PlanDelta, oscillating_moves


@dataclass(frozen=True)
class ReplayConfig:
    """How to drive a replay: horizon, controller policy, solve mode."""

    horizon_hours: float = 24.0 * 14
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: Warm incremental re-solves (deltas + SolveCache) vs. a full
    #: model rebuild per re-plan — the benchmark's two arms.
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValueError("replay horizon must be positive")


@dataclass
class ReplayResult:
    """Everything one replay produced, ready for reporting."""

    initial_cost: float
    final_cost: float
    deltas: list[PlanDelta]
    counters: dict[str, float]
    initial_solve_seconds: float
    #: Solver seconds across every re-plan — suppressed ones included.
    replan_solve_seconds: float
    horizon_hours: float
    incremental: bool

    @property
    def total_moves(self) -> int:
        return sum(len(d.moves) for d in self.deltas)

    @property
    def total_servers_moved(self) -> int:
        return sum(d.servers_moved for d in self.deltas)

    def oscillations(self, window_hours: float = 168.0) -> list[tuple[str, float, float]]:
        return oscillating_moves(self.deltas, window_hours)

    def summary(self) -> str:
        mode = "incremental" if self.incremental else "full re-plan"
        replans = int(self.counters.get("online.replans_triggered", 0))
        return (
            f"{mode}: {len(self.deltas)} deltas / {replans} replans, "
            f"{self.total_moves} moves ({self.total_servers_moved} servers), "
            f"cost {self.initial_cost:,.0f} -> {self.final_cost:,.0f}, "
            f"replan solve time {self.replan_solve_seconds:.3f}s"
        )

    def as_dict(self) -> dict:
        return {
            "incremental": self.incremental,
            "horizon_hours": self.horizon_hours,
            "initial_cost": self.initial_cost,
            "final_cost": self.final_cost,
            "initial_solve_seconds": round(self.initial_solve_seconds, 6),
            "replan_solve_seconds": round(self.replan_solve_seconds, 6),
            "total_moves": self.total_moves,
            "total_servers_moved": self.total_servers_moved,
            "oscillating_moves": len(self.oscillations()),
            "counters": dict(self.counters),
            "deltas": [d.as_dict() for d in self.deltas],
        }


def build_queue(
    load_events: list[LoadEvent],
    outages: list[Outage],
    horizon_hours: float,
) -> EventQueue:
    """Merge a load trace and outage list into one ordered queue.

    Same-timestamp ordering is the simulator's deterministic kind
    ordering (repairs before failures before load changes), so a
    repaired site is back in the pool before the controller reacts to
    the load level at that instant.
    """
    queue = EventQueue()
    for event in load_events:
        if event.time_hours >= horizon_hours:
            continue
        queue.push(
            event.time_hours,
            EventKind.LOAD_CHANGE,
            group=event.group,
            value=event.factor,
        )
    for outage in outages:
        if outage.duration_hours <= 0.0 or outage.start_hours >= horizon_hours:
            continue
        queue.push(outage.start_hours, EventKind.SITE_FAIL, site=outage.site)
        if outage.end_hours < horizon_hours:
            queue.push(outage.end_hours, EventKind.SITE_REPAIR, site=outage.site)
    return queue


#: Counter families a replay reports: the online loop's own counters
#: plus the warm-path telemetry underneath it (context reuse/extension,
#: hint repair, dual re-entries) — the per-profile evidence that the
#: incremental arm actually took the fast path.
_REPLAY_COUNTER_PREFIXES = ("online.", "incremental.", "relaxation.")


def _online_counter_delta(
    before: dict[str, float], after: dict[str, float]
) -> dict[str, float]:
    return {
        name: after[name] - before.get(name, 0.0)
        for name in sorted(after)
        if name.startswith(_REPLAY_COUNTER_PREFIXES)
        and after[name] != before.get(name, 0.0)
    }


def run_replay(
    state: AsIsState,
    load_events: list[LoadEvent],
    outages: list[Outage] | None = None,
    config: ReplayConfig | None = None,
    planner_options: PlannerOptions | None = None,
) -> ReplayResult:
    """Drive the online controller over a merged event trace."""
    config = config or ReplayConfig()
    controller = OnlineController(
        state,
        planner_options=planner_options,
        config=config.controller,
        incremental=config.incremental,
    )
    start = time.perf_counter()
    initial = controller.initial_plan()
    initial_seconds = time.perf_counter() - start
    # Snapshot *after* the initial plan: counters report the replay loop
    # itself, not the one cold solve every arm pays identically.
    before = metrics.snapshot()

    queue = build_queue(load_events, outages or [], config.horizon_hours)
    while queue:
        batch: list[Event] = [queue.pop()]
        now = batch[0].time_hours
        while queue and queue.peek().time_hours == now:
            batch.append(queue.pop())
        controller.step(now, batch)

    return ReplayResult(
        initial_cost=initial.breakdown.total,
        final_cost=controller.incumbent.breakdown.total,
        deltas=controller.deltas,
        counters=_online_counter_delta(before, metrics.snapshot()),
        initial_solve_seconds=initial_seconds,
        replan_solve_seconds=controller.solve_seconds_total,
        horizon_hours=config.horizon_hours,
        incremental=config.incremental,
    )
