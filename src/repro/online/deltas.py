"""Plan diffs as migration deltas.

A re-plan's output is not a new plan document but the *difference*
against the incumbent: the set of group relocations, expressed with the
same :class:`repro.migration.Move` records the offline wave planner
uses, so delta costing (per-server move cost, bulk data volume) and the
offline business-case machinery agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.entities import AsIsState
from ..migration.schedule import Move


@dataclass(frozen=True)
class DeltaEconomics:
    """Costing knobs for converting a placement diff into moves."""

    move_cost_per_server: float = 300.0
    data_gb_per_server: float = 200.0

    def __post_init__(self) -> None:
        if self.move_cost_per_server < 0 or self.data_gb_per_server < 0:
            raise ValueError("negative delta economics")


def diff_placements(
    state: AsIsState,
    before: Mapping[str, str],
    after: Mapping[str, str],
    economics: DeltaEconomics | None = None,
) -> list[Move]:
    """The moves that turn placement ``before`` into ``after``.

    Groups are walked in state order so the move list is deterministic
    for a given pair of placements.
    """
    economics = economics or DeltaEconomics()
    moves: list[Move] = []
    for group in state.app_groups:
        src = before.get(group.name)
        dst = after.get(group.name)
        if dst is None or src == dst:
            continue
        moves.append(
            Move(
                group=group.name,
                servers=group.servers,
                from_site=src,
                to_site=dst,
                data_gb=group.servers * economics.data_gb_per_server,
                move_cost=group.servers * economics.move_cost_per_server,
            )
        )
    return moves


@dataclass
class PlanDelta:
    """One re-plan's outcome: when, why, what moved, and at what price."""

    time_hours: float
    reason: str
    moves: list[Move] = field(default_factory=list)
    solve_seconds: float = 0.0
    via: str = "re-solved"
    cost_before: float = 0.0
    cost_after: float = 0.0

    @property
    def servers_moved(self) -> int:
        return sum(m.servers for m in self.moves)

    @property
    def move_cost(self) -> float:
        return sum(m.move_cost for m in self.moves)

    def describe(self) -> str:
        moved = ", ".join(f"{m.group}:{m.from_site}→{m.to_site}" for m in self.moves)
        return (
            f"t={self.time_hours:.1f}h {self.reason}: "
            f"{len(self.moves)} moves ({self.servers_moved} servers) "
            f"[{moved or 'none'}]"
        )

    def as_dict(self) -> dict:
        """JSON-safe record (what ``etransform replay --json`` emits)."""
        return {
            "time_hours": self.time_hours,
            "reason": self.reason,
            "via": self.via,
            "solve_seconds": round(self.solve_seconds, 6),
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
            "moves": [
                {
                    "group": m.group,
                    "servers": m.servers,
                    "from": m.from_site,
                    "to": m.to_site,
                    "move_cost": m.move_cost,
                }
                for m in self.moves
            ],
        }


def oscillating_moves(
    deltas: list[PlanDelta], window_hours: float = 168.0
) -> list[tuple[str, float, float]]:
    """Moves that reverse an earlier move of the same group within the window.

    Returns ``(group, earlier_time, later_time)`` triples — the thrash
    the migration-cost objective term exists to prevent.  A replayed
    trace is thrash-free when this list is empty.
    """
    history: dict[str, list[tuple[float, str | None, str]]] = {}
    oscillations: list[tuple[str, float, float]] = []
    for delta in deltas:
        for move in delta.moves:
            past = history.setdefault(move.group, [])
            for when, src, dst in past:
                if (
                    delta.time_hours - when <= window_hours
                    and move.from_site == dst
                    and move.to_site == src
                ):
                    oscillations.append((move.group, when, delta.time_hours))
            past.append((delta.time_hours, move.from_site, move.to_site))
    return oscillations
