"""Threshold-driven re-planning controller (OpenStack-Neat-style).

The controller owns the *online* consolidation loop.  It tracks three
pieces of streamed state — per-group load factors, failed sites, and
the incumbent plan — and turns threshold crossings into re-plans:

* **overload** — a site's effective load (``Σ factor·servers`` of the
  groups placed there) exceeds ``overload_utilization × capacity``: a
  ``cap_load`` row (per-group ``factor × servers`` weights frozen at
  trigger time) shrinks the site's admissible effective occupancy to
  the target band and the re-solve pushes groups elsewhere (forced).
  Caps are *sticky* — kept until the site is parked — so a site that
  ran hot cannot silently reabsorb the load it shed;
* **underload** — a site idles below ``underload_utilization``: the
  controller *parks* it (a ``retire_site`` delta) so the re-solve
  evacuates and switches it off (voluntary — subject to the payback
  guard below);
* **site failure / repair** — a failed site is retired from the model;
  on repair the retirement is dropped and a voluntary re-plan may move
  work back.

Every re-solve runs against the incumbent with a migration-cost term in
the objective (:meth:`RevisionedModel.set_move_penalty`): moving a
group costs its amortized migration spend, so the optimizer only
relocates work whose steady-state saving beats the disruption.  On top
of that, *voluntary* re-plans pass a payback guard — the move cost of
the diff must be repaid by the cost delta within
``payback_window_months`` — and an oscillation veto (no voluntary
candidate may reverse a recent move).  Together these are the no-thrash
contract: replaying one trace twice yields identical delta sequences
with zero oscillating moves.

In ``incremental=False`` mode every re-plan rebuilds the model from
scratch (the paper's one-shot path in a loop) — the benchmark baseline
the warm path is measured against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..core.entities import AsIsState
from ..core.formulation import InfeasibleModelError
from ..core.hint_repair import make_hint_repairer
from ..core.incremental import Directive, RevisionedModel
from ..core.plan import TransformationPlan
from ..core.planner import ETransformPlanner, PlannerOptions, PlanningError
from ..lp import SolveCache
from ..sim.events import Event, EventKind
from ..sim.load import LoadEvent
from ..telemetry import metrics
from ..telemetry.counters import declare_counters
from .deltas import DeltaEconomics, PlanDelta, diff_placements

#: Counters the online loop owns (service /metrics + bench JSON surface).
ONLINE_COUNTERS = (
    "online.events_processed",
    "online.replans_triggered",
    "online.deltas_emitted",
    "online.moves_emitted",
    "online.thrash_suppressed",
    "online.replans_infeasible",
    "online.sites_parked",
    "online.sites_unparked",
)
declare_counters(__name__, ONLINE_COUNTERS)


@dataclass(frozen=True)
class ControllerConfig:
    """Thresholds and anti-thrash economics of the online loop."""

    overload_utilization: float = 0.85
    underload_utilization: float = 0.30
    target_utilization: float = 0.70
    move_cost_per_server: float = 300.0
    data_gb_per_server: float = 200.0
    #: Months of steady-state saving a voluntary re-plan's move cost
    #: must be repaid within; also sets the amortized per-server move
    #: penalty in the objective (cost / window).
    payback_window_months: float = 6.0
    #: A voluntary candidate reversing a move younger than this is vetoed.
    thrash_window_hours: float = 168.0
    #: After a voluntary re-plan (accepted or suppressed), underload
    #: triggers are held back this long — otherwise an idle site is
    #: re-proposed for parking on every event and suppressed each time.
    voluntary_cooldown_hours: float = 24.0

    def __post_init__(self) -> None:
        if not 0.0 < self.underload_utilization < self.target_utilization:
            raise ValueError("need 0 < underload < target utilization")
        if not self.target_utilization < self.overload_utilization <= 1.5:
            raise ValueError("need target < overload utilization <= 1.5")
        if self.move_cost_per_server < 0 or self.data_gb_per_server < 0:
            raise ValueError("negative migration economics")
        if self.payback_window_months <= 0:
            raise ValueError("payback window must be positive")
        if self.thrash_window_hours < 0:
            raise ValueError("thrash window cannot be negative")
        if self.voluntary_cooldown_hours < 0:
            raise ValueError("voluntary cooldown cannot be negative")

    @property
    def move_penalty_per_server(self) -> float:
        """Amortized monthly move cost — the objective's µ."""
        return self.move_cost_per_server / self.payback_window_months

    def economics(self) -> DeltaEconomics:
        return DeltaEconomics(
            move_cost_per_server=self.move_cost_per_server,
            data_gb_per_server=self.data_gb_per_server,
        )


#: Trigger reasons that must be acted on regardless of migration cost.
_FORCED_PREFIXES = ("overload:", "site_fail:")


class OnlineController:
    """Consumes a load/failure event stream and emits migration deltas."""

    def __init__(
        self,
        state: AsIsState,
        planner_options: PlannerOptions | None = None,
        config: ControllerConfig | None = None,
        incremental: bool = True,
    ) -> None:
        self.state = state
        self.options = planner_options or PlannerOptions()
        self.config = config or ControllerConfig()
        self.incremental = incremental
        self.targets = {dc.name: dc for dc in state.target_datacenters}
        self.load_factors: dict[str, float] = {}
        self.down_sites: set[str] = set()
        #: Sites retired because they failed (undone on repair).
        self.failed_sites: set[str] = set()
        #: Sites the controller evacuated for being idle.
        self.parked_sites: set[str] = set()
        #: Active overload caps, site → ``cap_load`` directive.
        self.caps: dict[str, Directive] = {}
        self.incumbent: TransformationPlan | None = None
        self.deltas: list[PlanDelta] = []
        #: Underload triggers are ignored before this sim-time.
        self.voluntary_hold_until = 0.0
        #: Solver seconds across *every* re-plan, emitted or suppressed.
        self.solve_seconds_total = 0.0
        self._move_log: list[tuple[float, str, str | None, str]] = []
        self._planner: ETransformPlanner | None = None
        self._engine: RevisionedModel | None = None
        self._cache: SolveCache | None = None

    # -- streamed state ----------------------------------------------------

    def observe(self, event: Event | LoadEvent) -> None:
        """Fold one event into the controller's view of the estate."""
        metrics.increment("online.events_processed")
        if isinstance(event, LoadEvent):
            self._observe_load(event.group, event.factor)
            return
        if event.kind is EventKind.LOAD_CHANGE:
            self._observe_load(event.group, float(event.value))
        elif event.kind is EventKind.SITE_FAIL:
            self._require_target(event.site)
            self.down_sites.add(event.site)
        elif event.kind is EventKind.SITE_REPAIR:
            self._require_target(event.site)
            self.down_sites.discard(event.site)
        else:
            raise ValueError(f"online controller cannot consume {event.kind}")

    def _observe_load(self, group: str, factor: float) -> None:
        self.state.group(group)  # KeyError on unknown groups
        if factor < 0:
            raise ValueError("load factor cannot be negative")
        self.load_factors[group] = factor

    def _require_target(self, site: str | None) -> None:
        if site not in self.targets:
            raise ValueError(f"event site {site!r} is not a target data center")

    # -- utilization -------------------------------------------------------

    def site_utilization(self) -> dict[str, float]:
        """Effective load / capacity per site, under the incumbent plan."""
        if self.incumbent is None:
            raise RuntimeError("no incumbent plan; call initial_plan() first")
        effective: dict[str, float] = {name: 0.0 for name in self.targets}
        for group in self.state.app_groups:
            site = self.incumbent.placement[group.name]
            factor = self.load_factors.get(group.name, 1.0)
            if site in effective:
                effective[site] += factor * group.servers
        return {
            name: load / self.targets[name].capacity
            for name, load in effective.items()
        }

    def trigger_reasons(self, now: float = 0.0) -> list[str]:
        """Threshold crossings that warrant a re-plan, deterministic order.

        Forced reasons (``overload:*``, ``site_fail:*``) come first,
        then voluntary ones (``site_repair:*``, ``underload:*``).
        """
        cfg = self.config
        utilization = self.site_utilization()
        forced: list[str] = []
        voluntary: list[str] = []
        for site in sorted(self.down_sites):
            hosts = any(
                self.incumbent.placement[g.name] == site
                for g in self.state.app_groups
            )
            if site not in self.failed_sites and hosts:
                forced.append(f"site_fail:{site}")
        for site in sorted(self.failed_sites):
            if site not in self.down_sites:
                voluntary.append(f"site_repair:{site}")
        for site, util in sorted(utilization.items()):
            if site in self.down_sites:
                continue
            if util > cfg.overload_utilization:
                forced.append(f"overload:{site}")
        underloaded = [
            (util, site)
            for site, util in utilization.items()
            if 0.0 < util < cfg.underload_utilization
            and site not in self.down_sites
            and site not in self.parked_sites
        ]
        active = sum(1 for util in utilization.values() if util > 0.0)
        if underloaded and active > 1 and now >= self.voluntary_hold_until:
            # Park one site per re-plan — mass evacuation is how a
            # controller paints itself into an infeasible corner.
            _, site = min(underloaded)
            voluntary.append(f"underload:{site}")
        return forced + voluntary

    # -- planning ----------------------------------------------------------

    def initial_plan(self) -> TransformationPlan:
        """Solve the one-shot plan the online loop starts from."""
        if self.incremental:
            self._planner = ETransformPlanner(self.state, replace(self.options))
            self._engine = RevisionedModel(self._planner.model)
            self._cache = SolveCache()
            # A directive that invalidates the incumbent (new cap row,
            # retirement) no longer forfeits the MIP start: the repairer
            # projects it back into the feasible region first.
            self._cache.hint_repairer = make_hint_repairer(self._planner.model)
            solution = self._planner.solve_model(cache=self._cache)
            self.incumbent = self._planner.finish_plan(solution)
        else:
            self.incumbent = ETransformPlanner(
                self.state, replace(self.options)
            ).build_plan()
        return self.incumbent

    def _directives(self) -> list[Directive]:
        """The directive set encoding the controller's current view."""
        retired = sorted(self.failed_sites | self.parked_sites)
        directives = [Directive("retire_site", datacenter=s) for s in retired]
        directives.extend(self.caps[site] for site in sorted(self.caps))
        return directives

    def _reduced_state(self) -> AsIsState:
        retired = self.failed_sites | self.parked_sites
        if not retired:
            return self.state
        return replace(
            self.state,
            target_datacenters=[
                dc for dc in self.state.target_datacenters if dc.name not in retired
            ],
        )

    def _solve(self, directives: list[Directive]) -> TransformationPlan | None:
        """Re-solve under ``directives``; ``None`` when infeasible."""
        penalty = (
            dict(self.incumbent.placement),
            self.config.move_penalty_per_server,
        )
        try:
            if self.incremental:
                engine = self._engine
                engine.sync(directives)
                if engine.move_penalty != penalty:
                    engine.set_move_penalty(*penalty)
                solution = self._planner.solve_model(cache=self._cache)
                return self._planner.finish_plan(
                    solution, state=self._reduced_state()
                )
            planner = ETransformPlanner(self.state, replace(self.options))
            engine = RevisionedModel(planner.model)
            for directive in directives:
                engine.apply(directive)
            engine.set_move_penalty(*penalty)
            solution = planner.solve_model()
            return planner.finish_plan(solution, state=self._reduced_state())
        except (InfeasibleModelError, PlanningError):
            return None

    def _describe_reuse(self, before: tuple[int, int]) -> str:
        if not self.incremental or self._cache is None:
            return "rebuild"
        if self._cache.hits > before[0]:
            return "cache hit"
        if self._cache.tightening_reuses > before[1]:
            return "still optimal"
        return "re-solved"

    def _reverses_recent_move(self, moves, now: float) -> bool:
        window = self.config.thrash_window_hours
        for move in moves:
            for when, group, src, dst in self._move_log:
                if (
                    group == move.group
                    and now - when <= window
                    and move.from_site == dst
                    and move.to_site == src
                ):
                    return True
        return False

    def replan(self, now: float, reasons: list[str]) -> PlanDelta | None:
        """Re-solve for the current view; emit the migration delta.

        Returns ``None`` when the re-plan was suppressed (thrash guard)
        or infeasible, or produced no moves.  The incumbent advances
        only on an emitted delta.
        """
        if self.incumbent is None:
            raise RuntimeError("no incumbent plan; call initial_plan() first")
        metrics.increment("online.replans_triggered")
        forced = any(r.startswith(_FORCED_PREFIXES) for r in reasons)
        if any(r.startswith("underload:") for r in reasons):
            # Whatever the outcome, don't re-propose parking every event.
            self.voluntary_hold_until = now + self.config.voluntary_cooldown_hours
        self._refresh_site_policy(reasons)

        before = (
            (self._cache.hits, self._cache.tightening_reuses)
            if self._cache is not None
            else (0, 0)
        )
        start = time.perf_counter()
        candidate = self._solve(self._directives())
        elapsed = time.perf_counter() - start
        self.solve_seconds_total += elapsed

        if candidate is None:
            # Back out whatever voluntary parking made this infeasible.
            metrics.increment("online.replans_infeasible")
            self._unpark_for_feasibility(reasons)
            return None

        moves = diff_placements(
            self.state,
            self.incumbent.placement,
            candidate.placement,
            self.config.economics(),
        )
        if not moves:
            return None

        if not forced:
            window = self.config.payback_window_months
            benefit = self.incumbent.breakdown.total - candidate.breakdown.total
            move_cost = sum(m.move_cost for m in moves)
            underpaid = benefit * window < move_cost
            if underpaid or self._reverses_recent_move(moves, now):
                metrics.increment("online.thrash_suppressed", len(moves))
                self._unpark_for_feasibility(reasons)
                return None

        delta = PlanDelta(
            time_hours=now,
            reason=",".join(reasons),
            moves=moves,
            solve_seconds=elapsed,
            via=self._describe_reuse(before),
            cost_before=self.incumbent.breakdown.total,
            cost_after=candidate.breakdown.total,
        )
        self.incumbent = candidate
        self.deltas.append(delta)
        for move in moves:
            self._move_log.append((now, move.group, move.from_site, move.to_site))
        metrics.increment("online.deltas_emitted")
        metrics.increment("online.moves_emitted", len(moves))
        return delta

    def _cap_directive(self, site: str) -> Directive:
        """An effective-load cap at the target band, factors frozen now."""
        weights = tuple(
            (g.name, round(self.load_factors.get(g.name, 1.0) * g.servers, 6))
            for g in self.state.app_groups
        )
        limit = self.config.target_utilization * self.targets[site].capacity
        return Directive("cap_load", datacenter=site, limit=limit, weights=weights)

    def _refresh_site_policy(self, reasons: list[str]) -> None:
        """Update retires and caps from the trigger reasons."""
        for reason in reasons:
            kind, _, site = reason.partition(":")
            if kind == "site_fail":
                self.failed_sites.add(site)
            elif kind == "site_repair":
                self.failed_sites.discard(site)
            elif kind == "underload":
                self.parked_sites.add(site)
                self.caps.pop(site, None)
                metrics.increment("online.sites_parked")
            elif kind == "overload":
                self.caps[site] = self._cap_directive(site)
                if site in self.parked_sites:
                    self.parked_sites.discard(site)
                    metrics.increment("online.sites_unparked")
        # A capacity crunch anywhere re-opens every parked site.
        if any(r.startswith("overload:") for r in reasons) and self.parked_sites:
            metrics.increment("online.sites_unparked", len(self.parked_sites))
            self.parked_sites.clear()

    def _unpark_for_feasibility(self, reasons: list[str]) -> None:
        """Roll back voluntary parking after a failed/suppressed re-plan."""
        for reason in reasons:
            kind, _, site = reason.partition(":")
            if kind == "underload" and site in self.parked_sites:
                self.parked_sites.discard(site)
                metrics.increment("online.sites_unparked")

    # -- one-shot step -----------------------------------------------------

    def step(self, now: float, events: list[Event | LoadEvent]) -> PlanDelta | None:
        """Observe a batch of same-timestamp events, re-plan if warranted."""
        for event in events:
            self.observe(event)
        reasons = self.trigger_reasons(now)
        if not reasons:
            return None
        return self.replan(now, reasons)
