"""Shared process fan-out used across the library.

:func:`parallel_map` started life inside ``experiments/harness.py`` as
sweep plumbing; it now also powers the decomposition engine's pricing
fan-out (:mod:`repro.core.decomposition`) and anything else that wants
"run these independent chunks across worker processes".  The old import
path (``repro.experiments.harness.parallel_map``) keeps working as a
deprecated alias.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

__all__ = ["parallel_map", "effective_jobs"]


def _in_daemon() -> bool:
    import multiprocessing

    return multiprocessing.current_process().daemon


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], jobs: int = 1
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``jobs <= 1`` runs a plain serial loop (no pickling requirements);
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` with
    ``min(jobs, len(items))`` workers is used and results come back in
    input order.  ``fn`` and the items must be picklable in that case —
    pass a module-level function (or :func:`functools.partial` over one).

    Inside a daemonic process (e.g. a planning-service worker) forking
    children is forbidden, so the call degrades to the serial loop
    rather than raising.
    """
    work: Sequence[_T] = list(items)
    if jobs <= 1 or len(work) <= 1 or _in_daemon():
        return [fn(item) for item in work]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))


def effective_jobs(jobs: int) -> int:
    """Resolve a jobs request: ``0``/negative means "one per CPU"."""
    if jobs >= 1:
        return jobs
    return max(1, os.cpu_count() or 1)
