"""The unified planning entry point: ``repro.solve(state, method=...)``.

One documented front door for every planning engine::

    from repro import load_enterprise1, solve

    result = solve(load_enterprise1(), method="auto")
    print(result.method, result.plan.breakdown.total, result.gap)

``method`` selects the engine:

* ``"milp"`` — the monolithic MILP through :class:`ETransformPlanner`
  (exact; the default choice for small/medium estates).
* ``"decomposition"`` — the Dantzig-Wolfe/Lagrangian engine
  (:mod:`repro.core.decomposition`): parallel per-group pricing against
  capacity duals, greedy rounding, certified duality gap.  Scales to
  estates far beyond what the monolithic branch-and-bound can hold.
* ``"greedy"`` — the marginal-cost greedy baseline (no bound).
* ``"auto"`` — ``milp`` for small estates and DR states,
  ``decomposition`` once the (group x target) pair count passes
  :data:`AUTO_DECOMPOSITION_PAIRS`.

Every engine returns the same typed :class:`PlanResult` carrying the
plan, the resolved method, the solver's :class:`SolveStats`, and the
lower bound / relative gap when the engine certifies one.

The legacy entry points (:func:`repro.core.planner.plan_consolidation`,
:meth:`ETransformPlanner.plan`, :func:`repro.baselines.greedy_plan`)
are thin deprecated wrappers over this function.  For backward
compatibility ``repro.solve`` also still accepts a raw
:class:`repro.lp.Problem` (the pre-redesign LP-level signature) and
forwards it to :func:`repro.lp.solve` with a :class:`DeprecationWarning`
— import it from ``repro.lp`` instead.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from .core.decomposition import DecompositionConfig, solve_decomposition
from .core.entities import AsIsState
from .core.plan import TransformationPlan
from .core.planner import ETransformPlanner, PlannerOptions, PlanningError
from .lp.problem import Problem
from .telemetry import SolveStats

__all__ = [
    "AUTO_DECOMPOSITION_PAIRS",
    "METHODS",
    "PlanResult",
    "solve",
]

#: Planning engines accepted by :func:`solve` / ``PlannerOptions.method``.
METHODS = ("auto", "milp", "decomposition", "greedy")

#: ``method="auto"`` switches to the decomposition engine when the
#: estate's (group x target) pair count reaches this; below it the
#: monolithic MILP is exact and fast enough.
AUTO_DECOMPOSITION_PAIRS = 50_000


@dataclass
class PlanResult:
    """One planning run: the plan plus how (and how well) it was solved.

    ``gap`` is the engine's certified relative optimality gap
    (``nan`` when the engine provides no bound, e.g. greedy);
    ``lower_bound`` is the matching proven bound on the objective.
    """

    plan: TransformationPlan
    method: str
    stats: SolveStats | None
    gap: float = math.nan
    lower_bound: float = -math.inf

    @property
    def objective(self) -> float:
        return self.plan.breakdown.total


def resolve_method(state: AsIsState, options: PlannerOptions) -> str:
    """The engine ``method="auto"`` picks for this state.

    DR states always plan through the monolithic MILP (the
    decomposition engine does not cover joint DR yet); otherwise the
    decomposition engine takes over once the estate has at least
    :data:`AUTO_DECOMPOSITION_PAIRS` (group, target) pairs.
    """
    if options.enable_dr:
        return "milp"
    pairs = len(state.app_groups) * len(state.target_datacenters)
    return "decomposition" if pairs >= AUTO_DECOMPOSITION_PAIRS else "milp"


def solve(
    state: AsIsState | Problem,
    *,
    method: str | None = None,
    options: PlannerOptions | None = None,
    **legacy,
) -> PlanResult:
    """Plan a consolidation for ``state`` with the selected engine.

    Parameters
    ----------
    state:
        The as-is estate to plan.
    method:
        One of :data:`METHODS`; ``None`` defers to ``options.method``
        (whose default is ``"auto"``).
    options:
        Full :class:`PlannerOptions` record (model knobs, solver
        options, the ``jobs`` fan-out for decomposition pricing).

    Returns
    -------
    PlanResult
        Plan, resolved method, solver stats, bound and gap.
    """
    if isinstance(state, Problem):
        # Pre-redesign signature: repro.solve(problem, backend=...).
        warnings.warn(
            "repro.solve(problem, ...) now lives at repro.lp.solve; the "
            "top-level solve() plans AsIsState estates",
            DeprecationWarning,
            stacklevel=2,
        )
        from .lp.solvers import solve as lp_solve

        return lp_solve(state, **legacy)
    if legacy:
        raise TypeError(
            f"solve() got unexpected keyword arguments {sorted(legacy)}; "
            "pass solver settings through options=PlannerOptions(...)"
        )

    options = options or PlannerOptions()
    chosen = method if method is not None else options.method
    if chosen not in METHODS:
        raise ValueError(
            f"unknown planning method {chosen!r} "
            f"(expected one of {', '.join(METHODS)})"
        )
    if chosen == "auto":
        chosen = resolve_method(state, options)

    if chosen == "milp":
        planner = ETransformPlanner(state, options)
        plan = planner.build_plan()
        stats = plan.solver_stats
        gap = math.nan
        lower = -math.inf
        if stats is not None:
            gap = stats.mip_gap
            lower = stats.best_bound
        return PlanResult(
            plan=plan, method="milp", stats=stats, gap=gap, lower_bound=lower
        )

    if chosen == "decomposition":
        solve_opts = options.resolved_solve_options()
        config = DecompositionConfig(
            jobs=options.jobs,
            time_limit=solve_opts.time_limit,
            gap_target=(
                solve_opts.mip_rel_gap
                if solve_opts.mip_rel_gap is not None
                else DecompositionConfig.gap_target
            ),
        )
        outcome = solve_decomposition(
            state, options.model_options(), config
        )
        return PlanResult(
            plan=outcome.plan,
            method="decomposition",
            stats=outcome.stats,
            gap=outcome.gap,
            lower_bound=outcome.lower_bound,
        )

    # greedy
    from .baselines.greedy import run_greedy

    plan = run_greedy(
        state,
        enable_dr=options.enable_dr,
        wan_model=options.wan_model,
    )
    return PlanResult(plan=plan, method="greedy", stats=plan.solver_stats)
