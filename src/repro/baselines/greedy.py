"""The greedy consolidation baseline (Section VI-B).

Processes application groups in decreasing server-count order; for each,
prices every target data center — power, labor, WAN, latency penalty and
the *marginal* space cost at the site's current occupancy — and takes
the cheapest.  Greedy sees latency (unlike the manual heuristic) but,
being myopic about volume discounts and packing, lands between manual
and the LP in solution quality.

The DR variant re-walks the groups and picks each secondary site by the
same marginal logic, adding the incremental shared-pool server purchase.
"""

from __future__ import annotations

import warnings

from ..core.entities import ApplicationGroup, AsIsState, DataCenter
from ..core.plan import TransformationPlan, evaluate_plan
from ..core.wan import inter_site_wan_price, undirected_peer_traffic, wan_cost


class GreedyPlanError(RuntimeError):
    """Greedy painted itself into a corner (no feasible site left)."""


def _placement_cost(
    state: AsIsState,
    group: ApplicationGroup,
    dc: DataCenter,
    occupancy: int,
    wan_model: str,
) -> float:
    """Marginal cost of adding ``group`` to ``dc`` at given occupancy."""
    params = state.params
    power_labor = group.servers * (
        params.server_power_kw * dc.power_cost_per_kw
        + dc.labor_cost_per_admin / params.servers_per_admin
    )
    space = (
        dc.space_cost.total_cost(occupancy + group.servers)
        - dc.space_cost.total_cost(occupancy)
    )
    fixed = dc.fixed_monthly_cost if occupancy == 0 else 0.0
    wan = wan_cost(group, dc, params, model=wan_model)
    latency = 0.0
    if group.total_users > 0:
        mean = group.mean_latency(dc.latency_to_users)
        latency = group.latency_penalty.total_penalty(mean, group.total_users)
    return power_labor + space + fixed + wan + latency


def _peer_split_cost(
    state: AsIsState,
    group: ApplicationGroup,
    dc: DataCenter,
    placement: dict[str, str],
    pair_traffic: dict[frozenset, float],
    sites: dict[str, DataCenter],
) -> float:
    """Inter-group WAN toward already-placed peers (myopic: groups not
    yet placed contribute nothing — greedy cannot see the future)."""
    total = 0.0
    for pair, traffic in pair_traffic.items():
        if group.name not in pair:
            continue
        (other,) = pair - {group.name}
        other_site = placement.get(other)
        if other_site is None or other_site == dc.name:
            continue
        total += traffic * inter_site_wan_price(dc, sites[other_site])
    return total


def greedy_plan(
    state: AsIsState,
    enable_dr: bool = False,
    wan_model: str = "metered",
) -> TransformationPlan:
    """Deprecated wrapper; use ``repro.solve(state, method="greedy")``.

    Thin shim over the unified entry point — identical plans, plus the
    typed :class:`repro.api.PlanResult` envelope when called there.
    """
    warnings.warn(
        "greedy_plan() is deprecated; use repro.solve(state, "
        "method='greedy', options=PlannerOptions(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import solve as unified_solve
    from ..core.planner import PlannerOptions

    options = PlannerOptions(enable_dr=enable_dr, wan_model=wan_model)
    return unified_solve(state, method="greedy", options=options).plan


def run_greedy(
    state: AsIsState,
    enable_dr: bool = False,
    wan_model: str = "metered",
) -> TransformationPlan:
    """Run the greedy baseline; returns a fully evaluated plan."""
    occupancy = {dc.name: 0 for dc in state.target_datacenters}
    remaining = {dc.name: dc.capacity for dc in state.target_datacenters}
    placement: dict[str, str] = {}
    sites = {dc.name: dc for dc in state.target_datacenters}
    pair_traffic = undirected_peer_traffic(state.app_groups)

    order = sorted(state.app_groups, key=lambda g: -g.servers)
    for group in order:
        best: tuple[float, DataCenter] | None = None
        for dc in state.target_datacenters:
            if not state.placeable(group, dc):
                continue
            if remaining[dc.name] < group.servers:
                continue
            cost = _placement_cost(state, group, dc, occupancy[dc.name], wan_model)
            if pair_traffic:
                cost += _peer_split_cost(
                    state, group, dc, placement, pair_traffic, sites
                )
            if best is None or cost < best[0]:
                best = (cost, dc)
        if best is None:
            raise GreedyPlanError(
                f"group {group.name!r} ({group.servers} servers) fits nowhere; "
                "greedy filled the candidate sites badly"
            )
        dc = best[1]
        placement[group.name] = dc.name
        occupancy[dc.name] += group.servers
        remaining[dc.name] -= group.servers

    secondary: dict[str, str] = {}
    if enable_dr:
        secondary = _greedy_secondary(state, placement, occupancy, remaining)

    return evaluate_plan(
        state,
        placement,
        secondary=secondary,
        wan_model=wan_model,
        solver="greedy" + ("+dr" if enable_dr else ""),
    )


def _greedy_secondary(
    state: AsIsState,
    placement: dict[str, str],
    occupancy: dict[str, int],
    remaining: dict[str, int],
) -> dict[str, str]:
    """Pick secondaries one group at a time, pricing the pool growth.

    ``pair_load[(a, b)]`` tracks servers whose primary is *a* backed at
    *b*; the shared pool at *b* is the max over *a*, so the marginal
    purchase of a candidate is how much it raises that max.
    """
    params = state.params
    pair_load: dict[tuple[str, str], int] = {}
    pool: dict[str, int] = {dc.name: 0 for dc in state.target_datacenters}

    order = sorted(state.app_groups, key=lambda g: -g.servers)
    secondary: dict[str, str] = {}
    for group in order:
        primary = placement[group.name]
        best: tuple[float, DataCenter] | None = None
        for dc in state.target_datacenters:
            if dc.name == primary:
                continue
            if not state.placeable(group, dc):
                continue
            new_pair = pair_load.get((primary, dc.name), 0) + group.servers
            delta = max(0, new_pair - pool[dc.name])
            if params.include_backup_in_capacity and delta > remaining[dc.name]:
                continue
            per_server = (
                params.dr_server_cost
                + params.backup_power_fraction
                * params.server_power_kw
                * dc.power_cost_per_kw
                + params.backup_labor_fraction
                * dc.labor_cost_per_admin
                / params.servers_per_admin
            )
            space = (
                dc.space_cost.total_cost(occupancy[dc.name] + pool[dc.name] + delta)
                - dc.space_cost.total_cost(occupancy[dc.name] + pool[dc.name])
            )
            fixed = (
                dc.fixed_monthly_cost
                if delta > 0 and occupancy[dc.name] + pool[dc.name] == 0
                else 0.0
            )
            cost = delta * per_server + space + fixed
            if best is None or cost < best[0]:
                best = (cost, dc)
        if best is None:
            raise GreedyPlanError(
                f"no DR site has room for group {group.name!r}"
            )
        dc = best[1]
        secondary[group.name] = dc.name
        new_pair = pair_load.get((primary, dc.name), 0) + group.servers
        pair_load[(primary, dc.name)] = new_pair
        delta = max(0, new_pair - pool[dc.name])
        if delta:
            pool[dc.name] += delta
            if params.include_backup_in_capacity:
                remaining[dc.name] -= delta
    return secondary
