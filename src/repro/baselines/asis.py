"""As-is state evaluation, with and without bolted-on DR.

The "as-is" bar in Figs. 4 and 6 is the cost of doing nothing: every
application group stays in its current data center at that site's
prices.  The DR variant follows the paper's comparison point — "adding
DR to the as-is state by building a single backup data center that acts
as the backup of all other data centers".
"""

from __future__ import annotations

from dataclasses import replace
import statistics

from ..core.costs import StepCostFunction
from ..core.entities import AsIsState, DataCenter
from ..core.plan import TransformationPlan, evaluate_plan

#: Name of the synthetic single backup site used by :func:`asis_with_dr_plan`.
ASIS_BACKUP_SITE = "asis-backup"


def _current_placement(state: AsIsState) -> dict[str, str]:
    placement: dict[str, str] = {}
    for group in state.app_groups:
        if not group.current_datacenter:
            raise ValueError(
                f"group {group.name!r} has no current data center; the as-is "
                "cost is undefined for it"
            )
        placement[group.name] = group.current_datacenter
    return placement


def asis_plan(state: AsIsState, wan_model: str = "metered") -> TransformationPlan:
    """Cost of the unchanged estate (the paper's AS-IS bar)."""
    plan = evaluate_plan(
        state,
        _current_placement(state),
        datacenters=state.current_datacenters,
        wan_model=wan_model,
        solver="as-is",
    )
    return plan


def _median_backup_site(state: AsIsState, capacity: int) -> DataCenter:
    """Synthesize the single as-is backup site at median market prices.

    The paper builds one new backup data center; we price it at the
    median of the current estate (no volume discount — a bolt-on site
    is not part of any consolidation deal) and give it enough room for
    the worst single-site failure.
    """
    currents = state.current_datacenters
    if not currents:
        raise ValueError("state has no current data centers to back up")
    space = statistics.median(
        dc.space_cost.unit_price(1) for dc in currents
    )
    power = statistics.median(dc.power_cost_per_kw for dc in currents)
    labor = statistics.median(dc.labor_cost_per_admin for dc in currents)
    wan = statistics.median(dc.wan_cost_per_mb for dc in currents)
    latency = {}
    vpn = {}
    for loc in state.user_locations:
        lat_values = [
            dc.latency_to_users[loc.name]
            for dc in currents
            if loc.name in dc.latency_to_users
        ]
        if lat_values:
            latency[loc.name] = statistics.median(lat_values)
        vpn_values = [
            dc.vpn_link_cost[loc.name]
            for dc in currents
            if loc.name in dc.vpn_link_cost
        ]
        if vpn_values:
            vpn[loc.name] = statistics.median(vpn_values)
    fixed = statistics.median(dc.fixed_monthly_cost for dc in currents)
    return DataCenter(
        name=ASIS_BACKUP_SITE,
        capacity=capacity,
        space_cost=StepCostFunction.flat(space),
        power_cost_per_kw=power,
        labor_cost_per_admin=labor,
        wan_cost_per_mb=wan,
        latency_to_users=latency,
        vpn_link_cost=vpn,
        fixed_monthly_cost=fixed,
    )


def asis_with_dr_plan(state: AsIsState, wan_model: str = "metered") -> TransformationPlan:
    """As-is plus a single shared backup site (the AS-IS+DR bar of Fig. 6).

    Every group's secondary is the synthetic backup site; under the
    single-failure model its pool is the largest current-site load.
    """
    placement = _current_placement(state)
    load: dict[str, int] = {}
    for group in state.app_groups:
        site = placement[group.name]
        load[site] = load.get(site, 0) + group.servers
    worst_site_load = max(load.values())

    backup_site = _median_backup_site(state, capacity=max(worst_site_load, 1))
    secondary = {group.name: ASIS_BACKUP_SITE for group in state.app_groups}
    pool = list(state.current_datacenters) + [backup_site]
    return evaluate_plan(
        state,
        placement,
        secondary=secondary,
        datacenters=pool,
        wan_model=wan_model,
        solver="as-is+dr",
    )
