"""Comparison algorithms: as-is evaluation, manual and greedy heuristics."""

from .asis import ASIS_BACKUP_SITE, asis_plan, asis_with_dr_plan
from .greedy import GreedyPlanError, greedy_plan, run_greedy
from .manual import ManualPlanError, manual_plan

__all__ = [
    "ASIS_BACKUP_SITE",
    "GreedyPlanError",
    "ManualPlanError",
    "asis_plan",
    "asis_with_dr_plan",
    "greedy_plan",
    "manual_plan",
    "run_greedy",
]
