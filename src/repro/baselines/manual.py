"""The state-of-the-art manual consolidation heuristic.

Mirrors current industry practice as the paper describes it: pick a
small number of target sites a priori (by an ad-hoc spreadsheet metric —
here the cheapest estimated per-server bill, sized so the chosen sites
can hold the estate), then move every application group to the chosen
site *closest to its current location*.  Latency constraints are never
consulted, which is exactly why the manual bars in Figs. 4 and 6 pay
enormous latency penalties.

The DR variant pairs each chosen site with a backup site (the nearest
candidate not used as a primary; backup sites are reused when
candidates run out — safe under the single-failure model) and mirrors
placements, as in Section VI-C.
"""

from __future__ import annotations

from ..core.entities import ApplicationGroup, AsIsState, DataCenter
from ..core.plan import TransformationPlan, evaluate_plan
from ..datasets.geography import distance_km


class ManualPlanError(RuntimeError):
    """The manual procedure could not find a feasible plan."""


def _choose_sites(state: AsIsState, k: int) -> list[DataCenter]:
    """Ad-hoc a-priori site choice: minimum real-estate-style cost.

    Ranks candidates by the estimated fully-discounted per-server bill
    (space at the deepest tier, power, labor) — the spreadsheet metric a
    consolidation team actually uses.  Latency never enters, which is
    the manual method's defining blind spot.
    """
    params = state.params

    def per_server_estimate(dc: DataCenter) -> float:
        deepest = dc.space_cost.segments[-1].unit_price
        return (
            deepest
            + params.server_power_kw * dc.power_cost_per_kw
            + dc.labor_cost_per_admin / params.servers_per_admin
        )

    ranked = sorted(
        state.target_datacenters,
        key=lambda dc: (per_server_estimate(dc), -dc.capacity),
    )
    return ranked[:k]


def _closest(candidates: list[DataCenter], x: float, y: float) -> list[DataCenter]:
    """Candidates ordered by distance to a point."""
    return sorted(candidates, key=lambda dc: distance_km(dc.x, dc.y, x, y))


def _group_origin(state: AsIsState, group: ApplicationGroup) -> tuple[float, float]:
    """Coordinates of the group's current site (fallback: first user loc)."""
    if group.current_datacenter:
        try:
            dc = state.current(group.current_datacenter)
            return dc.x, dc.y
        except KeyError:
            pass
    for loc in state.user_locations:
        if group.users.get(loc.name, 0) > 0:
            return loc.x, loc.y
    return 0.0, 0.0


def _initial_primaries(state: AsIsState, k: int) -> list[DataCenter]:
    """The k cheapest sites, grown until they can hold the estate.

    A human planner eyeballs this first: "two data centers — no wait,
    two won't fit 4000 servers, make it four".
    """
    ranked = _choose_sites(state, len(state.target_datacenters))
    total = state.total_servers
    chosen: list[DataCenter] = []
    for dc in ranked:
        chosen.append(dc)
        if len(chosen) >= k and sum(c.capacity for c in chosen) >= total:
            break
    if sum(c.capacity for c in chosen) < total:
        raise ManualPlanError(
            "even every candidate site together cannot hold the estate"
        )
    return chosen


def _pair_backups(
    state: AsIsState, primaries: list[DataCenter]
) -> dict[str, DataCenter]:
    """Assign each primary a backup site (nearest non-primary; reused
    when candidates run out — only one primary can fail at a time)."""
    reserve = [dc for dc in state.target_datacenters if dc not in primaries]
    backups: dict[str, DataCenter] = {}
    for site in primaries:
        if reserve:
            partner = _closest(reserve, site.x, site.y)[0]
            reserve.remove(partner)
        elif backups:
            partner = _closest(list(backups.values()), site.x, site.y)[0]
        else:
            # Every candidate is a primary: mirror onto another primary.
            others = [dc for dc in primaries if dc.name != site.name]
            if not others:
                raise ManualPlanError(
                    "a single candidate site cannot host primaries and backups"
                )
            partner = _closest(others, site.x, site.y)[0]
        backups[site.name] = partner
    return backups


def manual_plan(
    state: AsIsState,
    k: int = 2,
    enable_dr: bool = False,
    wan_model: str = "metered",
) -> TransformationPlan:
    """Run the manual heuristic into (at least) ``k`` consolidated sites.

    Groups spill to the next-closest chosen site when one fills up; if
    the chosen sites cannot hold a group, further candidates are pulled
    in by the same rule of thumb.  Raises :class:`ManualPlanError` only
    when no superset of sites works.
    """
    if k < 1:
        raise ValueError("manual consolidation needs at least one site")

    chosen = _initial_primaries(state, k)
    remaining = {dc.name: dc.capacity for dc in state.target_datacenters}
    placement: dict[str, str] = {}

    def try_place(group: ApplicationGroup) -> bool:
        ox, oy = _group_origin(state, group)
        for site in _closest(chosen, ox, oy):
            if not state.placeable(group, site):
                continue
            if remaining[site.name] >= group.servers:
                placement[group.name] = site.name
                remaining[site.name] -= group.servers
                return True
        return False

    # Large groups first so spilling happens on small, flexible groups.
    for group in sorted(state.app_groups, key=lambda g: -g.servers):
        if try_place(group):
            continue
        # Pull in further sites by the same a-priori metric until the
        # group fits (or candidates run out).
        placed = False
        for candidate in _choose_sites(state, len(state.target_datacenters)):
            if candidate in chosen:
                continue
            chosen.append(candidate)
            if try_place(group):
                placed = True
                break
        if not placed:
            raise ManualPlanError(
                f"group {group.name!r} ({group.servers} servers) fits in no "
                "remaining manual site"
            )

    secondary: dict[str, str] = {}
    if enable_dr:
        backups = _pair_backups(state, chosen)
        for group_name, site_name in placement.items():
            secondary[group_name] = backups[site_name].name

    return evaluate_plan(
        state,
        placement,
        secondary=secondary,
        wan_model=wan_model,
        solver="manual" + ("+dr" if enable_dr else ""),
    )
